//! Streaming quantile estimation with the P² algorithm.
//!
//! Jain & Chlamtac, "The P² algorithm for dynamic calculation of quantiles
//! and histograms without storing observations", CACM 1985.

/// Streaming estimator of a single quantile using the P² algorithm.
///
/// Keeps five markers whose positions are adjusted with a piecewise-parabolic
/// prediction as observations arrive, giving an O(1)-memory estimate of any
/// fixed quantile.
///
/// # Examples
///
/// ```
/// use vserve_metrics::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.push(i as f64);
/// }
/// let median = q.estimate();
/// assert!((median - 501.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: u64,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate of the quantile.
    ///
    /// With fewer than five observations, falls back to the exact quantile of
    /// the observations so far (nearest-rank). Returns `0.0` when empty.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let rank = ((self.p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            return sorted[rank - 1];
        }
        self.heights[2]
    }
}

/// A set of [`P2Quantile`] estimators sharing one input stream.
///
/// # Examples
///
/// ```
/// use vserve_metrics::QuantileSet;
///
/// let mut set = QuantileSet::new(&[0.5, 0.95, 0.99]);
/// for i in 0..10_000 {
///     set.push((i % 100) as f64);
/// }
/// assert!(set.estimate(0.99).unwrap() >= set.estimate(0.5).unwrap());
/// assert!(set.estimate(0.9).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSet {
    estimators: Vec<P2Quantile>,
}

impl QuantileSet {
    /// Creates estimators for each quantile in `qs`.
    ///
    /// # Panics
    ///
    /// Panics if any quantile is outside `(0, 1)`.
    pub fn new(qs: &[f64]) -> Self {
        QuantileSet {
            estimators: qs.iter().map(|&q| P2Quantile::new(q)).collect(),
        }
    }

    /// Adds one observation to every estimator.
    pub fn push(&mut self, x: f64) {
        for e in &mut self.estimators {
            e.push(x);
        }
    }

    /// Estimate for quantile `q`, or `None` if `q` was not registered.
    pub fn estimate(&self, q: f64) -> Option<f64> {
        self.estimators
            .iter()
            .find(|e| (e.quantile() - q).abs() < 1e-12)
            .map(|e| e.estimate())
    }

    /// All (quantile, estimate) pairs.
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        self.estimators
            .iter()
            .map(|e| (e.quantile(), e.estimate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn exact_for_tiny_streams() {
        let mut q = P2Quantile::new(0.5);
        q.push(10.0);
        q.push(2.0);
        q.push(7.0);
        assert_eq!(q.estimate(), 7.0);
    }

    #[test]
    fn uniform_median_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut q = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            q.push(rng.gen::<f64>());
        }
        assert!((q.estimate() - 0.5).abs() < 0.02, "median {}", q.estimate());
    }

    #[test]
    fn exponential_p99_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut q = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            let u: f64 = rng.gen();
            q.push(-(1.0 - u).ln());
        }
        // True p99 of Exp(1) is ln(100) ≈ 4.605.
        let est = q.estimate();
        assert!((est - 4.605).abs() < 0.4, "p99 {est}");
    }

    proptest! {
        #[test]
        fn estimate_within_range(xs in prop::collection::vec(-1e3f64..1e3, 5..300)) {
            let mut q = P2Quantile::new(0.9);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &xs {
                q.push(x);
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let est = q.estimate();
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }
    }
}
