//! NEON (4-lane) implementation of [`F32x`] for aarch64.
//!
//! NEON is baseline on aarch64, so no runtime detection gate is needed;
//! the dispatcher calls the generic kernel with this type directly.

use std::arch::aarch64::*;

use crate::F32x;

/// 4 × f32 in a `float32x4_t`.
#[derive(Clone, Copy)]
pub struct NeonF32x(float32x4_t);

impl F32x for NeonF32x {
    const LANES: usize = 4;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        NeonF32x(vdupq_n_f32(v))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        NeonF32x(vld1q_f32(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        vst1q_f32(ptr, self.0);
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        NeonF32x(vaddq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        NeonF32x(vsubq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        NeonF32x(vmulq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        NeonF32x(vdivq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        NeonF32x(vminq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        NeonF32x(vmaxq_f32(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        let mut lanes = [0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), self.0);
        lanes.iter().fold(0.0, |acc, &v| acc + v)
    }
}
