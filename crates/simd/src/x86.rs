//! AVX2 (8-lane) and AVX-512F (16-lane) implementations of [`F32x`].
//!
//! Every method is `#[inline(always)]` so the intrinsics inline into the
//! `#[target_feature]` dispatch wrappers in `lib.rs` — both for codegen
//! quality and because an out-of-line body would be compiled without the
//! feature enabled. `mul_add` keeps its default two-rounding definition
//! (no `_mm*_fmadd_ps`): see the bit-identity contract in the crate docs.

use std::arch::x86_64::*;

use crate::F32x;

/// 8 × f32 in a `__m256`.
#[derive(Clone, Copy)]
pub struct Avx2F32x(__m256);

impl F32x for Avx2F32x {
    const LANES: usize = 8;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        Avx2F32x(_mm256_set1_ps(v))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        Avx2F32x(_mm256_loadu_ps(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        _mm256_storeu_ps(ptr, self.0);
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_add_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_sub_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_mul_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_div_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_min_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        Avx2F32x(_mm256_max_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        let mut lanes = [0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), self.0);
        lanes.iter().fold(0.0, |acc, &v| acc + v)
    }
}

/// 16 × f32 in a `__m512`.
#[derive(Clone, Copy)]
pub struct Avx512F32x(__m512);

impl F32x for Avx512F32x {
    const LANES: usize = 16;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        Avx512F32x(_mm512_set1_ps(v))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        Avx512F32x(_mm512_loadu_ps(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        _mm512_storeu_ps(ptr, self.0);
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_add_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_sub_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_mul_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_div_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_min_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        Avx512F32x(_mm512_max_ps(self.0, rhs.0))
    }

    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        // NOT _mm512_reduce_add_ps: that reduces pairwise, which is a
        // different summation order than the scalar left-to-right fold.
        let mut lanes = [0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), self.0);
        lanes.iter().fold(0.0, |acc, &v| acc + v)
    }
}
