//! The four vectorized hot kernels, written once against [`F32x`] and
//! dispatched at runtime, behind safe, length-checked entry points.
//!
//! Lane placement follows the bit-identity contract (crate docs): lanes
//! span independent output elements only —
//!
//! * [`gemm_tile8`] — lanes across the 8 packed-`B` panel columns; the
//!   `p` reduction stays a serial ascending loop of mul-then-add.
//! * [`idct8x8`] — both passes are broadcast-coefficient × contiguous
//!   8-wide basis/tmp rows; lanes across `x`, reduction over `u`/`v`
//!   serial ascending.
//! * [`ycbcr_to_rgb_row`] — lanes across pixels; the caller gathers the
//!   (subsampled, hence non-contiguous) Y/Cb/Cr samples into contiguous
//!   rows, the `round().clamp().cast()` finish stays scalar per lane
//!   because `f32::round` (half-away-from-zero) has no exact vector
//!   equivalent.
//! * [`resize_norm_row`] — lanes across output pixels; the caller
//!   gathers the four bilinear taps and `wx` into contiguous rows, the
//!   lerp / `/255` / normalize arithmetic runs vectorized (division
//!   included — IEEE division is exactly rounded, so `div` is
//!   bit-identical to scalar `/`).
//!
//! Each kernel has a `*_ref` scalar reference twin: a verbatim copy of
//! the consuming crate's original scalar expression, used by the
//! differential tests as the oracle.

use crate::{dispatch, dispatch8, F32x, SimdOp};

/// Rows per GEMM register tile (must match `vserve-dnn`'s `GEMM_MR`).
pub const TILE_MR: usize = 4;
/// Columns per GEMM register tile / packed panel width (`GEMM_NR`).
pub const TILE_NR: usize = 8;

// ---------------------------------------------------------------- GEMM

struct GemmTile8<'a> {
    a: &'a [f32],
    panel: &'a [f32],
    i0: usize,
    mr: usize,
    k: usize,
}

impl SimdOp for GemmTile8<'_> {
    type Out = [[f32; TILE_NR]; TILE_MR];

    #[inline(always)]
    unsafe fn run<S: F32x>(self) -> Self::Out {
        let GemmTile8 {
            a,
            panel,
            i0,
            mr,
            k,
        } = self;
        let nv = TILE_NR / S::LANES; // LANES ∈ {1, 4, 8} via dispatch8
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        let mut acc = [[S::splat(0.0); TILE_NR]; TILE_MR];
        if mr == TILE_MR {
            // Full tile: fixed row count so accumulators stay in registers.
            for p in 0..k {
                let prow = pp.add(p * TILE_NR);
                let mut bv = [S::splat(0.0); TILE_NR];
                for v in 0..nv {
                    bv[v] = S::load(prow.add(v * S::LANES));
                }
                for r in 0..TILE_MR {
                    let av = S::splat(*ap.add((i0 + r) * k + p));
                    for v in 0..nv {
                        acc[r][v] = acc[r][v].add(av.mul(bv[v]));
                    }
                }
            }
        } else {
            for p in 0..k {
                let prow = pp.add(p * TILE_NR);
                let mut bv = [S::splat(0.0); TILE_NR];
                for v in 0..nv {
                    bv[v] = S::load(prow.add(v * S::LANES));
                }
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let av = S::splat(*ap.add((i0 + r) * k + p));
                    for v in 0..nv {
                        accr[v] = accr[v].add(av.mul(bv[v]));
                    }
                }
            }
        }
        let mut out = [[0f32; TILE_NR]; TILE_MR];
        for (r, outr) in out.iter_mut().enumerate().take(mr) {
            for v in 0..nv {
                acc[r][v].store(outr.as_mut_ptr().add(v * S::LANES));
            }
        }
        out
    }
}

/// The `mr × 8` GEMM register micro-kernel: ascending-`p` accumulation of
/// `A[i0..i0+mr] · panel` where `panel` is one packed 8-column panel of
/// `B` (row `p` at `panel[p*8..p*8+8]`). Bit-identical to the scalar
/// tile at every dispatch level.
///
/// # Panics
///
/// Panics if `mr ∉ 1..=4`, `panel` is shorter than `k*8`, or `a` is
/// shorter than `(i0+mr)*k`.
pub fn gemm_tile8(a: &[f32], panel: &[f32], i0: usize, mr: usize, k: usize) -> [[f32; 8]; 4] {
    assert!(
        (1..=TILE_MR).contains(&mr),
        "gemm_tile8: mr {mr} out of range"
    );
    assert!(panel.len() >= k * TILE_NR, "gemm_tile8: panel too short");
    assert!(a.len() >= (i0 + mr) * k, "gemm_tile8: A too short");
    dispatch8(GemmTile8 {
        a,
        panel,
        i0,
        mr,
        k,
    })
}

/// Scalar reference for [`gemm_tile8`] — a verbatim copy of the original
/// `vserve-dnn` ragged-tile loop.
pub fn gemm_tile8_ref(a: &[f32], panel: &[f32], i0: usize, mr: usize, k: usize) -> [[f32; 8]; 4] {
    let mut acc = [[0f32; TILE_NR]; TILE_MR];
    for p in 0..k {
        let brow: &[f32; TILE_NR] = panel[p * TILE_NR..(p + 1) * TILE_NR].try_into().unwrap();
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            let av = a[(i0 + r) * k + p];
            for j in 0..TILE_NR {
                accr[j] += av * brow[j];
            }
        }
    }
    acc
}

// ---------------------------------------------------------------- IDCT

struct Idct8x8<'a> {
    coeffs: &'a [f32; 64],
    basis: &'a [[f32; 8]; 8],
}

impl SimdOp for Idct8x8<'_> {
    type Out = [f32; 64];

    #[inline(always)]
    unsafe fn run<S: F32x>(self) -> [f32; 64] {
        let Idct8x8 { coeffs, basis } = self;
        let nv = 8 / S::LANES;
        // rows: tmp[v][x] = Σu coeffs[v][u] C[u][x]
        let mut tmp = [0f32; 64];
        for v in 0..8 {
            for blk in 0..nv {
                let mut s = S::splat(0.0);
                for u in 0..8 {
                    let cu = S::load(basis[u].as_ptr().add(blk * S::LANES));
                    s = s.add(S::splat(coeffs[v * 8 + u]).mul(cu));
                }
                s.store(tmp.as_mut_ptr().add(v * 8 + blk * S::LANES));
            }
        }
        // cols: f[y][x] = Σv C[v][y] tmp[v][x]
        let mut out = [0f32; 64];
        for y in 0..8 {
            for blk in 0..nv {
                let mut s = S::splat(0.0);
                for v in 0..8 {
                    let tv = S::load(tmp.as_ptr().add(v * 8 + blk * S::LANES));
                    s = s.add(S::splat(basis[v][y]).mul(tv));
                }
                s.store(out.as_mut_ptr().add(y * 8 + blk * S::LANES));
            }
        }
        out
    }
}

/// Vectorized inverse 8×8 DCT over the caller's precomputed orthonormal
/// basis (`basis[u][x]`), lanes across `x`. Per-element accumulation
/// order matches the scalar triple loop exactly.
pub fn idct8x8(coeffs: &[f32; 64], basis: &[[f32; 8]; 8]) -> [f32; 64] {
    dispatch8(Idct8x8 { coeffs, basis })
}

/// Scalar reference for [`idct8x8`] — verbatim copy of the original
/// `vserve-codec` loops.
pub fn idct8x8_ref(coeffs: &[f32; 64], basis: &[[f32; 8]; 8]) -> [f32; 64] {
    let c = basis;
    let mut tmp = [0f32; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for u in 0..8 {
                s += coeffs[v * 8 + u] * c[u][x];
            }
            tmp[v * 8 + x] = s;
        }
    }
    let mut out = [0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for v in 0..8 {
                s += c[v][y] * tmp[v * 8 + x];
            }
            out[y * 8 + x] = s;
        }
    }
    out
}

// ------------------------------------------------------------- YCbCr

const MAX_LANES: usize = 16;

struct YcbcrRow<'a> {
    y: &'a [f32],
    cb: &'a [f32],
    cr: &'a [f32],
    out: &'a mut [u8],
}

impl SimdOp for YcbcrRow<'_> {
    type Out = ();

    #[inline(always)]
    unsafe fn run<S: F32x>(self) {
        let YcbcrRow { y, cb, cr, out } = self;
        let n = y.len();
        let mut i = 0;
        if S::LANES > 1 {
            let c128 = S::splat(128.0);
            let kr = S::splat(1.402);
            let kgb = S::splat(0.344_136);
            let kgr = S::splat(0.714_136);
            let kb = S::splat(1.772);
            while i + S::LANES <= n {
                let yv = S::load(y.as_ptr().add(i));
                let cbv = S::load(cb.as_ptr().add(i)).sub(c128);
                let crv = S::load(cr.as_ptr().add(i)).sub(c128);
                let r = yv.add(kr.mul(crv));
                let g = yv.sub(kgb.mul(cbv)).sub(kgr.mul(crv));
                let b = yv.add(kb.mul(cbv));
                let mut rl = [0f32; MAX_LANES];
                let mut gl = [0f32; MAX_LANES];
                let mut bl = [0f32; MAX_LANES];
                r.store(rl.as_mut_ptr());
                g.store(gl.as_mut_ptr());
                b.store(bl.as_mut_ptr());
                // round (half-away-from-zero) + clamp + cast stay scalar:
                // no vector op reproduces f32::round's semantics exactly.
                for l in 0..S::LANES {
                    out[(i + l) * 3] = rl[l].round().clamp(0.0, 255.0) as u8;
                    out[(i + l) * 3 + 1] = gl[l].round().clamp(0.0, 255.0) as u8;
                    out[(i + l) * 3 + 2] = bl[l].round().clamp(0.0, 255.0) as u8;
                }
                i += S::LANES;
            }
        }
        while i < n {
            let (yv, cbv, crv) = (y[i], cb[i] - 128.0, cr[i] - 128.0);
            let r = yv + 1.402 * crv;
            let g = yv - 0.344_136 * cbv - 0.714_136 * crv;
            let b = yv + 1.772 * cbv;
            out[i * 3] = r.round().clamp(0.0, 255.0) as u8;
            out[i * 3 + 1] = g.round().clamp(0.0, 255.0) as u8;
            out[i * 3 + 2] = b.round().clamp(0.0, 255.0) as u8;
            i += 1;
        }
    }
}

/// BT.601 YCbCr→RGB for a row of gathered (upsampled) samples: `y`, `cb`,
/// `cr` are full-resolution rows, `out` receives interleaved RGB. `cb`
/// and `cr` are raw JPEG values (the −128 centering happens inside,
/// vectorized, IEEE-exact).
///
/// # Panics
///
/// Panics unless `y`, `cb`, `cr` have equal lengths and
/// `out.len() == 3 * y.len()`.
pub fn ycbcr_to_rgb_row(y: &[f32], cb: &[f32], cr: &[f32], out: &mut [u8]) {
    assert_eq!(y.len(), cb.len(), "ycbcr_to_rgb_row: cb length");
    assert_eq!(y.len(), cr.len(), "ycbcr_to_rgb_row: cr length");
    assert_eq!(out.len(), y.len() * 3, "ycbcr_to_rgb_row: out length");
    dispatch(YcbcrRow { y, cb, cr, out });
}

/// Scalar reference for [`ycbcr_to_rgb_row`] — verbatim copy of the
/// original `vserve-codec` per-pixel conversion.
pub fn ycbcr_to_rgb_row_ref(y: &[f32], cb: &[f32], cr: &[f32], out: &mut [u8]) {
    for i in 0..y.len() {
        let (yv, cbv, crv) = (y[i], cb[i] - 128.0, cr[i] - 128.0);
        let r = yv + 1.402 * crv;
        let g = yv - 0.344_136 * cbv - 0.714_136 * crv;
        let b = yv + 1.772 * cbv;
        out[i * 3] = r.round().clamp(0.0, 255.0) as u8;
        out[i * 3 + 1] = g.round().clamp(0.0, 255.0) as u8;
        out[i * 3 + 2] = b.round().clamp(0.0, 255.0) as u8;
    }
}

// --------------------------------------------------- fused preprocess

struct ResizeNormRow<'a> {
    p00: &'a [f32],
    p10: &'a [f32],
    p01: &'a [f32],
    p11: &'a [f32],
    wx: &'a [f32],
    wy: f32,
    mean: f32,
    std: f32,
    out: &'a mut [f32],
}

impl SimdOp for ResizeNormRow<'_> {
    type Out = ();

    #[inline(always)]
    unsafe fn run<S: F32x>(self) {
        let ResizeNormRow {
            p00,
            p10,
            p01,
            p11,
            wx,
            wy,
            mean,
            std,
            out,
        } = self;
        let n = out.len();
        let mut i = 0;
        if S::LANES > 1 {
            let one = S::splat(1.0);
            let wyv = S::splat(wy);
            let omwy = S::splat(1.0 - wy);
            let inv255 = S::splat(255.0);
            let mv = S::splat(mean);
            let sv = S::splat(std);
            while i + S::LANES <= n {
                let wxv = S::load(wx.as_ptr().add(i));
                let omwx = one.sub(wxv);
                let top = S::load(p00.as_ptr().add(i))
                    .mul(omwx)
                    .add(S::load(p10.as_ptr().add(i)).mul(wxv));
                let bot = S::load(p01.as_ptr().add(i))
                    .mul(omwx)
                    .add(S::load(p11.as_ptr().add(i)).mul(wxv));
                let v = top.mul(omwy).add(bot.mul(wyv)).div(inv255);
                v.sub(mv).div(sv).store(out.as_mut_ptr().add(i));
                i += S::LANES;
            }
        }
        while i < n {
            let top = p00[i] * (1.0 - wx[i]) + p10[i] * wx[i];
            let bot = p01[i] * (1.0 - wx[i]) + p11[i] * wx[i];
            let v = (top * (1.0 - wy) + bot * wy) / 255.0;
            out[i] = (v - mean) / std;
            i += 1;
        }
    }
}

/// The fused bilinear-resize + `/255` + normalize inner row: the caller
/// gathers the four tap rows and per-pixel `wx`, this computes
/// `((p00·(1−wx)+p10·wx)·(1−wy) + (p01·(1−wx)+p11·wx)·wy) / 255`, then
/// `(v − mean)/std`, lanes across pixels, bit-identical to the scalar
/// expression (division is IEEE-exact).
///
/// # Panics
///
/// Panics unless all five input rows have the same length as `out`.
#[allow(clippy::too_many_arguments)]
pub fn resize_norm_row(
    p00: &[f32],
    p10: &[f32],
    p01: &[f32],
    p11: &[f32],
    wx: &[f32],
    wy: f32,
    mean: f32,
    std: f32,
    out: &mut [f32],
) {
    let n = out.len();
    assert!(
        p00.len() == n && p10.len() == n && p01.len() == n && p11.len() == n && wx.len() == n,
        "resize_norm_row: row length mismatch"
    );
    dispatch(ResizeNormRow {
        p00,
        p10,
        p01,
        p11,
        wx,
        wy,
        mean,
        std,
        out,
    });
}

/// Scalar reference for [`resize_norm_row`] — verbatim copy of the
/// original `vserve-tensor` per-pixel expression.
#[allow(clippy::too_many_arguments)]
pub fn resize_norm_row_ref(
    p00: &[f32],
    p10: &[f32],
    p01: &[f32],
    p11: &[f32],
    wx: &[f32],
    wy: f32,
    mean: f32,
    std: f32,
    out: &mut [f32],
) {
    for i in 0..out.len() {
        let top = p00[i] * (1.0 - wx[i]) + p10[i] * wx[i];
        let bot = p01[i] * (1.0 - wx[i]) + p11[i] * wx[i];
        let v = (top * (1.0 - wy) + bot * wy) / 255.0;
        out[i] = (v - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{available_levels, set_level, Level};
    use proptest::prelude::*;

    /// Deterministic pseudo-random f32s with awkward magnitudes.
    fn pseudo(seed: u64, n: usize, scale: f32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                let u = (s.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f32 / (1u64 << 24) as f32;
                (u - 0.5) * 2.0 * scale
            })
            .collect()
    }

    fn for_each_level(mut f: impl FnMut(Level)) {
        for l in available_levels() {
            assert_eq!(set_level(l), l);
            f(l);
        }
        crate::reset_level();
    }

    #[test]
    fn env_override_and_clamp() {
        // Unsupported levels clamp to scalar, supported ones stick.
        for l in [Level::Scalar, Level::Neon, Level::Avx2, Level::Avx512] {
            let applied = set_level(l);
            if crate::supported(l) {
                assert_eq!(applied, l);
            } else {
                assert_eq!(applied, Level::Scalar);
            }
            assert_eq!(crate::active_level(), applied);
        }
        crate::reset_level();
    }

    #[test]
    fn level_names_round_trip() {
        for l in [Level::Scalar, Level::Neon, Level::Avx2, Level::Avx512] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("mmx"), None);
        assert!(Level::Scalar.lanes() == 1 && Level::Avx512.lanes() == 16);
    }

    #[test]
    fn gemm_tile_matches_reference_all_levels_all_shapes() {
        for k in [0usize, 1, 2, 3, 7, 8, 9, 17, 64] {
            for mr in 1..=TILE_MR {
                let a = pseudo(k as u64 * 31 + mr as u64, (mr + 2) * k.max(1), 4.0);
                let panel = pseudo(k as u64 * 77 + 5, k * TILE_NR, 4.0);
                let want = gemm_tile8_ref(&a, &panel, 1, mr, k);
                for_each_level(|l| {
                    let got = gemm_tile8(&a, &panel, 1, mr, k);
                    for r in 0..mr {
                        assert_eq!(
                            got[r].map(f32::to_bits),
                            want[r].map(f32::to_bits),
                            "level {l} k {k} mr {mr} row {r}"
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn idct_matches_reference_all_levels() {
        // A plausible basis (the real one lives in vserve-codec).
        let mut basis = [[0f32; 8]; 8];
        for (u, row) in basis.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0f64 / 2.0f64.sqrt()) / 2.0
            } else {
                0.5
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (cu * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        for seed in 0..8u64 {
            let vals = pseudo(seed, 64, 512.0);
            let mut coeffs = [0f32; 64];
            coeffs.copy_from_slice(&vals);
            let want = idct8x8_ref(&coeffs, &basis);
            for_each_level(|l| {
                let got = idct8x8(&coeffs, &basis);
                assert_eq!(
                    got.map(f32::to_bits),
                    want.map(f32::to_bits),
                    "level {l} seed {seed}"
                );
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Widths 1..=2*max_lanes hit every lane-tail split at every level.
        #[test]
        fn ycbcr_row_bit_identical_across_levels(
            n in 1usize..=2 * MAX_LANES,
            seed in any::<u64>()
        ) {
            let y: Vec<f32> = pseudo(seed, n, 128.0).iter().map(|v| v + 128.0).collect();
            let cb: Vec<f32> = pseudo(seed ^ 1, n, 128.0).iter().map(|v| v + 128.0).collect();
            let cr: Vec<f32> = pseudo(seed ^ 2, n, 128.0).iter().map(|v| v + 128.0).collect();
            let mut want = vec![0u8; n * 3];
            ycbcr_to_rgb_row_ref(&y, &cb, &cr, &mut want);
            for_each_level(|l| {
                let mut got = vec![0u8; n * 3];
                ycbcr_to_rgb_row(&y, &cb, &cr, &mut got);
                assert_eq!(&got, &want, "level {l}");
            });
        }

        #[test]
        fn resize_norm_row_bit_identical_across_levels(
            n in 1usize..=2 * MAX_LANES,
            seed in any::<u64>(),
            wy in 0f32..1.0
        ) {
            let p00: Vec<f32> = pseudo(seed, n, 128.0).iter().map(|v| v + 128.0).collect();
            let p10: Vec<f32> = pseudo(seed ^ 3, n, 128.0).iter().map(|v| v + 128.0).collect();
            let p01: Vec<f32> = pseudo(seed ^ 4, n, 128.0).iter().map(|v| v + 128.0).collect();
            let p11: Vec<f32> = pseudo(seed ^ 5, n, 128.0).iter().map(|v| v + 128.0).collect();
            let wx: Vec<f32> = pseudo(seed ^ 6, n, 0.5).iter().map(|v| v + 0.5).collect();
            let mut want = vec![0f32; n];
            resize_norm_row_ref(&p00, &p10, &p01, &p11, &wx, wy, 0.485, 0.229, &mut want);
            for_each_level(|l| {
                let mut got = vec![0f32; n];
                resize_norm_row(&p00, &p10, &p01, &p11, &wx, wy, 0.485, 0.229, &mut got);
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(&gb, &wb, "level {l}");
            });
        }

        #[test]
        fn gemm_tile_proptest_lane_tails(
            k in 1usize..=2 * MAX_LANES,
            mr in 1usize..=TILE_MR,
            seed in any::<u64>()
        ) {
            let a = pseudo(seed, (mr + 1) * k, 8.0);
            let panel = pseudo(seed ^ 7, k * TILE_NR, 8.0);
            let want = gemm_tile8_ref(&a, &panel, 0, mr, k);
            for_each_level(|l| {
                let got = gemm_tile8(&a, &panel, 0, mr, k);
                for r in 0..mr {
                    assert_eq!(
                        got[r].map(f32::to_bits),
                        want[r].map(f32::to_bits),
                        "level {l} row {r}"
                    );
                }
            });
        }
    }

    #[test]
    fn mul_add_is_two_rounding() {
        // A case where fused a*b+c differs from round(a*b)+c: if some impl
        // switched to FMA this would catch it at the trait level.
        struct Probe {
            a: f32,
            b: f32,
            c: f32,
        }
        impl crate::SimdOp for Probe {
            type Out = f32;
            #[inline(always)]
            unsafe fn run<S: F32x>(self) -> f32 {
                let mut out = [0f32; MAX_LANES];
                S::splat(self.a)
                    .mul_add(S::splat(self.b), S::splat(self.c))
                    .store(out.as_mut_ptr());
                out[0]
            }
        }
        let (a, b, c) = (1.000_000_1f32, 1.000_000_1, -1.000_000_2);
        let want = a * b + c; // two roundings, what scalar code does
        for l in available_levels() {
            set_level(l);
            let got = crate::dispatch(Probe { a, b, c });
            assert_eq!(got.to_bits(), want.to_bits(), "level {l}");
        }
        crate::reset_level();
    }

    #[test]
    fn hsum_is_ascending_order() {
        struct Probe<'a>(&'a [f32]);
        impl crate::SimdOp for Probe<'_> {
            type Out = f32;
            #[inline(always)]
            unsafe fn run<S: F32x>(self) -> f32 {
                // Only exercise when the input covers a full vector.
                if self.0.len() < S::LANES {
                    return self.0.iter().fold(0.0, |a, &v| a + v);
                }
                S::load(self.0.as_ptr()).hsum()
            }
        }
        let vals = pseudo(99, MAX_LANES, 1000.0);
        for l in available_levels() {
            set_level(l);
            let got = crate::dispatch(Probe(&vals));
            let want = vals[..l.lanes().min(vals.len())]
                .iter()
                .fold(0.0f32, |a, &v| a + v);
            assert_eq!(got.to_bits(), want.to_bits(), "level {l}");
        }
        crate::reset_level();
    }

    #[test]
    fn min_max_lanewise() {
        struct Probe<'a>(&'a [f32], &'a [f32], &'a mut [f32], &'a mut [f32]);
        impl crate::SimdOp for Probe<'_> {
            type Out = ();
            #[inline(always)]
            unsafe fn run<S: F32x>(self) {
                let Probe(a, b, mn, mx) = self;
                let mut i = 0;
                while i + S::LANES <= a.len() {
                    let (va, vb) = (S::load(a.as_ptr().add(i)), S::load(b.as_ptr().add(i)));
                    va.min(vb).store(mn.as_mut_ptr().add(i));
                    va.max(vb).store(mx.as_mut_ptr().add(i));
                    i += S::LANES;
                }
                while i < a.len() {
                    mn[i] = a[i].min(b[i]);
                    mx[i] = a[i].max(b[i]);
                    i += 1;
                }
            }
        }
        let a = pseudo(7, 37, 10.0);
        let b = pseudo(8, 37, 10.0);
        for l in available_levels() {
            set_level(l);
            let (mut mn, mut mx) = (vec![0f32; 37], vec![0f32; 37]);
            crate::dispatch(Probe(&a, &b, &mut mn, &mut mx));
            for i in 0..37 {
                assert_eq!(mn[i], a[i].min(b[i]), "level {l} min {i}");
                assert_eq!(mx[i], a[i].max(b[i]), "level {l} max {i}");
            }
        }
        crate::reset_level();
    }
}
