//! One-lane implementation of [`F32x`] — the bit-identity oracle.
//!
//! Running a generic kernel with `ScalarF32x` executes exactly the f32
//! expressions the pre-SIMD scalar kernels compiled to, one element at a
//! time, which is what makes `vector == scalar` testable bit-for-bit.

use crate::F32x;

/// Single f32 "vector".
#[derive(Clone, Copy, Debug)]
pub struct ScalarF32x(f32);

impl F32x for ScalarF32x {
    const LANES: usize = 1;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarF32x(v)
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        ScalarF32x(*ptr)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        *ptr = self.0;
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        ScalarF32x(self.0 + rhs.0)
    }

    #[inline(always)]
    unsafe fn sub(self, rhs: Self) -> Self {
        ScalarF32x(self.0 - rhs.0)
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        ScalarF32x(self.0 * rhs.0)
    }

    #[inline(always)]
    unsafe fn div(self, rhs: Self) -> Self {
        ScalarF32x(self.0 / rhs.0)
    }

    #[inline(always)]
    unsafe fn min(self, rhs: Self) -> Self {
        ScalarF32x(self.0.min(rhs.0))
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        ScalarF32x(self.0.max(rhs.0))
    }

    #[inline(always)]
    unsafe fn hsum(self) -> f32 {
        self.0
    }
}
