//! Portable SIMD lane layer for the vserve hot kernels.
//!
//! Every other crate in the workspace carries `#![forbid(unsafe_code)]`,
//! so this crate is the single home for vector intrinsics. It exposes:
//!
//! * [`F32x`] — a trait over f32 lane operations (splat / load / store /
//!   add / sub / mul / div / min / max / unfused [`F32x::mul_add`] /
//!   ascending-order [`F32x::hsum`]), implemented for scalar, AVX2
//!   (8 lanes), AVX-512 (16 lanes) and NEON (4 lanes).
//! * [`SimdOp`] + [`dispatch`]/[`dispatch8`] — write a kernel once,
//!   generic over `S: F32x`, and run it at whatever level the host
//!   supports. [`dispatch8`] demotes AVX-512 to AVX2 for kernels whose
//!   natural row width is 8 (the GEMM panel and the 8×8 IDCT).
//! * [`kernels`] — the four vectorized hot kernels consumed by
//!   `vserve-dnn`, `vserve-codec` and `vserve-tensor` behind safe,
//!   length-checked entry points, plus their scalar reference twins.
//!
//! # Bit-identity contract
//!
//! The workspace pins `tiled == naive` GEMM and thread-count invariance
//! with *exact* equality, so vector paths must preserve the scalar
//! per-element arithmetic: lanes only ever span **independent output
//! elements** (panel columns, IDCT row entries, pixels), never the
//! reduction dimension, and accumulation runs in the same ascending-`p`
//! order with the same mul-then-add rounding sequence. For that reason
//! [`F32x::mul_add`] is deliberately a *two-rounding* composite
//! (`a*b + c` exactly as rustc compiles the scalar expression — rustc
//! does not contract to FMA by default) and implementations must not
//! override it with a fused instruction.
//!
//! # Dispatch order
//!
//! `VSERVE_SIMD=avx512|avx2|neon|scalar` overrides auto-detection; a
//! requested level the host cannot run falls back to scalar (never to a
//! different vector width, so an override is predictable). Otherwise the
//! best detected level wins: AVX-512 > AVX2 on x86-64, NEON on aarch64,
//! scalar elsewhere. [`set_level`] provides the same override
//! programmatically for benches and differential tests.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

pub mod kernels;
mod scalar;
pub use scalar::ScalarF32x;
#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Operations over a small vector of `f32` lanes.
///
/// All methods are `unsafe`: implementations use CPU intrinsics that are
/// only sound when the corresponding feature is actually enabled, which
/// the [`dispatch`] wrappers guarantee (they are `#[target_feature]`
/// functions selected by runtime detection). Methods must be
/// `#[inline(always)]` so the intrinsics inline into those wrappers.
pub trait F32x: Copy {
    /// Number of f32 lanes.
    const LANES: usize;
    /// Broadcast one value to all lanes.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn splat(v: f32) -> Self;
    /// Unaligned load of `LANES` consecutive values.
    ///
    /// # Safety
    /// `ptr` must be valid for reading `LANES` f32s; feature must be on.
    unsafe fn load(ptr: *const f32) -> Self;
    /// Unaligned store of `LANES` consecutive values.
    ///
    /// # Safety
    /// `ptr` must be valid for writing `LANES` f32s; feature must be on.
    unsafe fn store(self, ptr: *mut f32);
    /// Lane-wise addition.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn add(self, rhs: Self) -> Self;
    /// Lane-wise subtraction.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn sub(self, rhs: Self) -> Self;
    /// Lane-wise multiplication.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn mul(self, rhs: Self) -> Self;
    /// Lane-wise division (IEEE-exact, so bit-identical to scalar `/`).
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn div(self, rhs: Self) -> Self;
    /// Lane-wise minimum.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn min(self, rhs: Self) -> Self;
    /// Lane-wise maximum.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn max(self, rhs: Self) -> Self;
    /// `self * b + c` with **two roundings** — the same sequence rustc
    /// emits for the scalar expression. Never overridden with a fused
    /// multiply-add: FMA's single rounding would break the workspace's
    /// exact `vector == scalar` tests.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    #[inline(always)]
    unsafe fn mul_add(self, b: Self, c: Self) -> Self {
        self.mul(b).add(c)
    }
    /// Horizontal sum in **ascending lane order** (`l0 + l1 + …`), so the
    /// result matches a scalar left-to-right fold over the lanes.
    ///
    /// # Safety
    /// Caller must ensure the implementation's CPU feature is enabled.
    unsafe fn hsum(self) -> f32;
}

/// A kernel written once against [`F32x`], monomorphized per level by
/// [`dispatch`]/[`dispatch8`].
pub trait SimdOp: Sized {
    /// Kernel result type.
    type Out;
    /// Run the kernel with lane type `S`.
    ///
    /// # Safety
    /// Must only be called from a context where `S`'s CPU feature is
    /// enabled (the dispatch wrappers). Implementations should be
    /// `#[inline(always)]` so lane ops inline into that context.
    unsafe fn run<S: F32x>(self) -> Self::Out;
}

/// Instruction-set level for the f32 lane layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Plain scalar code — the bit-identity oracle, available everywhere.
    Scalar,
    /// 128-bit NEON, 4 lanes (aarch64 baseline).
    Neon,
    /// 256-bit AVX2, 8 lanes.
    Avx2,
    /// 512-bit AVX-512F, 16 lanes.
    Avx512,
}

impl Level {
    /// Lowercase name, matching the `VSERVE_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Neon => "neon",
            Level::Avx2 => "avx2",
            Level::Avx512 => "avx512",
        }
    }

    /// Parse a `VSERVE_SIMD` value; `None` for unrecognized strings.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Level::Scalar),
            "neon" => Some(Level::Neon),
            "avx2" => Some(Level::Avx2),
            "avx512" => Some(Level::Avx512),
            _ => None,
        }
    }

    /// f32 lanes at this level.
    pub fn lanes(self) -> usize {
        match self {
            Level::Scalar => 1,
            Level::Neon => 4,
            Level::Avx2 => 8,
            Level::Avx512 => 16,
        }
    }

    /// `true` for [`Level::Scalar`].
    pub fn is_scalar(self) -> bool {
        self == Level::Scalar
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const LVL_UNINIT: u8 = 0;

fn encode(l: Level) -> u8 {
    match l {
        Level::Scalar => 1,
        Level::Neon => 2,
        Level::Avx2 => 3,
        Level::Avx512 => 4,
    }
}

fn decode(v: u8) -> Level {
    match v {
        1 => Level::Scalar,
        2 => Level::Neon,
        3 => Level::Avx2,
        4 => Level::Avx512,
        _ => unreachable!("corrupt simd level {v}"),
    }
}

static ACTIVE: AtomicU8 = AtomicU8::new(LVL_UNINIT);

/// Can this host actually execute `l`?
pub fn supported(l: Level) -> bool {
    match l {
        Level::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => is_x86_feature_detected!("avx512f"),
        #[cfg(target_arch = "aarch64")]
        Level::Neon => true,
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

fn detect_best() -> Level {
    for l in [Level::Avx512, Level::Avx2, Level::Neon] {
        if supported(l) {
            return l;
        }
    }
    Level::Scalar
}

/// Every level this host can run, scalar first, widest last. Tests use
/// this to assert bit-identity under *all* locally available dispatches.
pub fn available_levels() -> Vec<Level> {
    let mut out = vec![Level::Scalar];
    for l in [Level::Neon, Level::Avx2, Level::Avx512] {
        if supported(l) {
            out.push(l);
        }
    }
    out
}

/// The level [`dispatch`] currently routes to.
///
/// Resolved once from `VSERVE_SIMD` (falling back to scalar when the
/// requested level is unsupported, and to auto-detection when the value
/// is unrecognized or unset), then cached; [`set_level`] overrides it.
pub fn active_level() -> Level {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != LVL_UNINIT {
        return decode(v);
    }
    let resolved = match std::env::var("VSERVE_SIMD") {
        Ok(s) => match Level::parse(&s) {
            Some(req) if supported(req) => req,
            Some(_) => Level::Scalar,
            None => detect_best(),
        },
        Err(_) => detect_best(),
    };
    ACTIVE.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Force the dispatch level (benches, differential tests). Unsupported
/// requests clamp to scalar. Returns the level actually applied.
pub fn set_level(l: Level) -> Level {
    let applied = if supported(l) { l } else { Level::Scalar };
    ACTIVE.store(encode(applied), Ordering::Relaxed);
    applied
}

/// Drop any cached/forced level; the next [`active_level`] re-resolves
/// from `VSERVE_SIMD` / auto-detection.
pub fn reset_level() {
    ACTIVE.store(LVL_UNINIT, Ordering::Relaxed);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_avx2<O: SimdOp>(op: O) -> O::Out {
    op.run::<x86::Avx2F32x>()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn run_avx512<O: SimdOp>(op: O) -> O::Out {
    op.run::<x86::Avx512F32x>()
}

/// Run `op` at the active level, full width.
pub fn dispatch<O: SimdOp>(op: O) -> O::Out {
    // SAFETY: each arm is only reachable when `active_level()` returned a
    // level `supported()` said the host can execute, so the
    // `#[target_feature]` wrappers are sound to call.
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe { run_avx512(op) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { run_avx2(op) },
        #[cfg(target_arch = "aarch64")]
        Level::Neon => unsafe { op.run::<neon::NeonF32x>() },
        _ => unsafe { op.run::<ScalarF32x>() },
    }
}

/// Run `op` at the active level, demoting AVX-512 to AVX2.
///
/// For kernels whose natural row width is 8 (the `GEMM_NR` panel, the
/// 8×8 IDCT) a 16-lane vector cannot fill; every avx512f machine also has
/// AVX2, so those kernels run 8-wide there instead of falling to scalar.
pub fn dispatch8<O: SimdOp>(op: O) -> O::Out {
    // SAFETY: as in `dispatch`; avx512f implies avx2.
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 | Level::Avx2 => unsafe { run_avx2(op) },
        #[cfg(target_arch = "aarch64")]
        Level::Neon => unsafe { op.run::<neon::NeonF32x>() },
        _ => unsafe { op.run::<ScalarF32x>() },
    }
}
