//! Canonical Huffman coding for JPEG entropy segments.

use crate::bits::{BitReader, BitWriter};
use crate::tables::HuffSpec;
use crate::DecodeJpegError;

/// Encoder-side table: symbol → (code, length).
#[derive(Debug, Clone)]
pub struct HuffEncoder {
    codes: [(u32, u32); 256],
}

impl HuffEncoder {
    /// Builds canonical codes from a DHT-style specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is inconsistent (more codes than a
    /// prefix-free set of the given lengths can hold).
    pub fn from_spec(spec: &HuffSpec) -> Self {
        let mut codes = [(0u32, 0u32); 256];
        let mut code = 0u32;
        let mut k = 0usize;
        for (len_minus_1, &count) in spec.bits.iter().enumerate() {
            let len = len_minus_1 as u32 + 1;
            for _ in 0..count {
                assert!(
                    code < (1u32 << len),
                    "huffman specification overflows length {len}"
                );
                let sym = spec.values[k];
                codes[sym as usize] = (code, len);
                code += 1;
                k += 1;
            }
            code <<= 1;
        }
        HuffEncoder { codes }
    }

    /// Emits the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has no code in this table.
    pub fn encode(&self, w: &mut BitWriter, symbol: u8) {
        let (code, len) = self.codes[symbol as usize];
        assert!(len > 0, "symbol {symbol:#04x} has no code");
        w.put(code, len);
    }
}

/// Decoder-side table using the T.81 MINCODE/MAXCODE/VALPTR scheme.
#[derive(Debug, Clone)]
pub struct HuffDecoder {
    min_code: [i32; 17],
    max_code: [i32; 17],
    val_ptr: [usize; 17],
    values: Vec<u8>,
}

impl HuffDecoder {
    /// Builds a decoder from a DHT-style specification.
    #[cfg_attr(not(test), allow(dead_code))] // file decoding goes via from_bits_values
    pub fn from_spec(spec: &HuffSpec) -> Self {
        Self::from_bits_values(&spec.bits, spec.values.to_vec())
    }

    /// Builds a decoder from raw DHT fields (as parsed from a file).
    pub fn from_bits_values(bits: &[u8; 16], values: Vec<u8>) -> Self {
        let mut min_code = [0i32; 17];
        let mut max_code = [-1i32; 17];
        let mut val_ptr = [0usize; 17];
        let mut code = 0i32;
        let mut k = 0usize;
        for l in 1..=16usize {
            let count = bits[l - 1] as usize;
            if count > 0 {
                val_ptr[l] = k;
                min_code[l] = code;
                code += count as i32;
                max_code[l] = code - 1;
                k += count;
            } else {
                max_code[l] = -1;
            }
            code <<= 1;
        }
        HuffDecoder {
            min_code,
            max_code,
            val_ptr,
            values,
        }
    }

    /// Decodes one symbol from the bit stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeJpegError::BadHuffmanCode`] if no code matches
    /// within 16 bits, or [`DecodeJpegError::UnexpectedEof`] if the segment
    /// ends mid-code.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u8, DecodeJpegError> {
        let mut code = 0i32;
        for l in 1..=16usize {
            code = (code << 1) | r.bit()? as i32;
            if self.max_code[l] >= 0 && code <= self.max_code[l] && code >= self.min_code[l] {
                let idx = self.val_ptr[l] + (code - self.min_code[l]) as usize;
                return self
                    .values
                    .get(idx)
                    .copied()
                    .ok_or(DecodeJpegError::BadHuffmanCode);
            }
        }
        Err(DecodeJpegError::BadHuffmanCode)
    }
}

/// JPEG magnitude category of a coefficient: the number of bits needed to
/// represent `|v|` (0 for `v == 0`).
pub fn category(v: i32) -> u32 {
    let a = v.unsigned_abs();
    32 - a.leading_zeros()
}

/// Encodes the amplitude bits for `v` in category `cat` (ones'-complement
/// form for negatives, per T.81 F.1.2.1).
pub fn amplitude_bits(v: i32, cat: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + (1 << cat) - 1) as u32
    }
}

/// Decodes `cat` amplitude bits back to a signed coefficient.
pub fn extend(bits: u32, cat: u32) -> i32 {
    if cat == 0 {
        return 0;
    }
    if bits < (1 << (cat - 1)) {
        bits as i32 - (1 << cat) + 1
    } else {
        bits as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{AC_CHROMA, AC_LUMA, DC_CHROMA, DC_LUMA};
    use proptest::prelude::*;

    #[test]
    fn all_standard_tables_round_trip_every_symbol() {
        for spec in [DC_LUMA, DC_CHROMA, AC_LUMA, AC_CHROMA] {
            let enc = HuffEncoder::from_spec(&spec);
            let dec = HuffDecoder::from_spec(&spec);
            let mut w = BitWriter::new();
            for &sym in spec.values {
                enc.encode(&mut w, sym);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for &sym in spec.values {
                assert_eq!(dec.decode(&mut r).unwrap(), sym);
            }
        }
    }

    #[test]
    fn category_known_values() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(255), 8);
        assert_eq!(category(-1024), 11);
    }

    #[test]
    fn extend_inverts_amplitude() {
        for v in -2047..=2047 {
            let cat = category(v);
            assert_eq!(extend(amplitude_bits(v, cat), cat), v, "v = {v}");
        }
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        let dec = HuffDecoder::from_spec(&DC_LUMA);
        // All-ones is not a DC_LUMA code of any length ≤ 16 except the
        // longest; craft a stream of a single 1-bit followed by EOF.
        let mut r = BitReader::new(&[]);
        assert!(dec.decode(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn symbol_sequences_round_trip(symbols in prop::collection::vec(0u8..12, 1..500)) {
            let enc = HuffEncoder::from_spec(&DC_LUMA);
            let dec = HuffDecoder::from_spec(&DC_LUMA);
            let mut w = BitWriter::new();
            for &s in &symbols {
                enc.encode(&mut w, s);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for &s in &symbols {
                prop_assert_eq!(dec.decode(&mut r).unwrap(), s);
            }
        }
    }
}
