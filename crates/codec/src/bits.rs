//! Entropy-coded-segment bit I/O with JPEG byte stuffing.

use crate::DecodeJpegError;

/// MSB-first bit writer that stuffs a `0x00` after every literal `0xFF`
/// byte, as required inside a JPEG entropy-coded segment.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `len` bits of `bits`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 24`.
    pub fn put(&mut self, bits: u32, len: u32) {
        assert!(len <= 24, "bit run too long: {len}");
        if len == 0 {
            return;
        }
        debug_assert!(bits < (1u32 << len), "bits exceed length");
        self.acc = (self.acc << len) | (bits & ((1u32 << len) - 1));
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            let byte = ((self.acc >> self.nbits) & 0xff) as u8;
            self.out.push(byte);
            if byte == 0xff {
                self.out.push(0x00);
            }
        }
    }

    /// Pads the current partial byte with `1` bits (a no-op on a byte
    /// boundary) — required before emitting a restart marker.
    pub fn pad_to_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1u32 << pad) - 1, pad);
        }
    }

    /// Appends raw bytes (e.g. an RSTn marker) directly to the output.
    ///
    /// # Panics
    ///
    /// Panics if called with buffered bits; call
    /// [`pad_to_byte`](Self::pad_to_byte) first.
    pub fn put_marker(&mut self, marker: u8) {
        assert_eq!(self.nbits, 0, "marker emitted mid-byte");
        self.out.push(0xff);
        self.out.push(marker);
    }

    /// Pads the final partial byte with `1` bits and returns the stuffed
    /// entropy-coded segment.
    pub fn finish(mut self) -> Vec<u8> {
        self.pad_to_byte();
        self.out
    }
}

/// MSB-first bit reader that removes `0xFF 0x00` stuffing and stops at any
/// other marker.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over an entropy-coded segment.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Pulls exactly one more byte into the accumulator.
    fn fill(&mut self) -> Result<(), DecodeJpegError> {
        if self.pos >= self.data.len() {
            return Err(DecodeJpegError::UnexpectedEof);
        }
        let byte = self.data[self.pos];
        if byte == 0xff {
            match self.data.get(self.pos + 1) {
                Some(0x00) => {
                    self.pos += 2; // stuffed 0xFF
                }
                _ => return Err(DecodeJpegError::UnexpectedEof), // marker: segment over
            }
        } else {
            self.pos += 1;
        }
        self.acc = (self.acc << 8) | u32::from(byte);
        self.nbits += 8;
        Ok(())
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeJpegError::UnexpectedEof`] when the segment is
    /// exhausted.
    pub fn bit(&mut self) -> Result<u32, DecodeJpegError> {
        if self.nbits == 0 {
            self.fill()?;
        }
        self.nbits -= 1;
        Ok((self.acc >> self.nbits) & 1)
    }

    /// Reads `len` bits MSB-first (`len` ≤ 16). `len == 0` returns 0.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeJpegError::UnexpectedEof`] when the segment is
    /// exhausted.
    pub fn bits(&mut self, len: u32) -> Result<u32, DecodeJpegError> {
        debug_assert!(len <= 16);
        let mut v = 0;
        for _ in 0..len {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }

    /// Byte offset of the next unread byte in the underlying slice.
    pub fn byte_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writer_pads_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        let out = w.finish();
        assert_eq!(out, vec![0b1011_1111]);
    }

    #[test]
    fn writer_stuffs_ff() {
        let mut w = BitWriter::new();
        w.put(0xff, 8);
        let out = w.finish();
        assert_eq!(out, vec![0xff, 0x00]);
    }

    #[test]
    fn reader_unstuffs_ff() {
        let mut r = BitReader::new(&[0xff, 0x00, 0x80]);
        assert_eq!(r.bits(8).unwrap(), 0xff);
        assert_eq!(r.bit().unwrap(), 1);
    }

    #[test]
    fn reader_stops_at_marker() {
        let mut r = BitReader::new(&[0xff, 0xd9]); // EOI
        assert!(matches!(r.bit(), Err(DecodeJpegError::UnexpectedEof)));
    }

    #[test]
    fn reader_eof_on_empty() {
        let mut r = BitReader::new(&[]);
        assert!(r.bit().is_err());
    }

    proptest! {
        #[test]
        fn round_trip_bits(runs in prop::collection::vec((0u32..0xffff, 1u32..17), 1..200)) {
            let mut w = BitWriter::new();
            for &(bits, len) in &runs {
                w.put(bits & ((1 << len) - 1), len);
            }
            let encoded = w.finish();
            let mut r = BitReader::new(&encoded);
            for &(bits, len) in &runs {
                prop_assert_eq!(r.bits(len).unwrap(), bits & ((1 << len) - 1));
            }
        }
    }
}
