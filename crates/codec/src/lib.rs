//! A from-scratch baseline JPEG codec.
//!
//! JPEG decoding is the dominant preprocessing cost in the paper's serving
//! pipelines, so this suite implements the codec rather than stubbing it:
//! color transform, optional 4:2:0 chroma subsampling, 8×8 DCT,
//! quality-scaled quantization, zigzag run-length coding, and canonical
//! Huffman entropy coding with JFIF framing — ITU-T T.81 baseline
//! sequential mode.
//!
//! The codec is used directly by the live-mode examples and to generate
//! the synthetic ImageNet-like payloads of `vserve-workload`; its
//! per-pixel/per-byte work profile grounds the preprocessing cost model in
//! `vserve-device`.
//!
//! # Examples
//!
//! ```
//! use vserve_codec::{decode, encode, EncodeOptions};
//! use vserve_tensor::Image;
//!
//! # fn main() -> Result<(), vserve_codec::DecodeJpegError> {
//! let img = Image::gradient(64, 48);
//! let jpeg = encode(&img, &EncodeOptions::default());
//! let back = decode(&jpeg)?;
//! assert_eq!((back.width(), back.height()), (64, 48));
//! assert!(vserve_codec::psnr(&img, &back) > 30.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod dct;
mod decode;
mod encode;
mod huffman;
pub mod preproc;
pub mod tables;

pub use decode::{
    decode, decode_scaled, decode_scaled_with, decode_with, probe_dimensions, DecodeScale,
};
pub use encode::encode;
pub use preproc::{preprocess_jpeg, preprocess_jpeg_with, PreprocPlan};

use vserve_tensor::Image;

/// Chroma subsampling mode for [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Subsampling {
    /// No chroma subsampling (4:4:4): larger files, no chroma aliasing.
    S444,
    /// 2×2 chroma subsampling (4:2:0): the common photographic default.
    #[default]
    S420,
}

/// Options controlling [`encode`].
///
/// # Examples
///
/// ```
/// use vserve_codec::{EncodeOptions, Subsampling};
///
/// let high_fidelity = EncodeOptions { quality: 95, subsampling: Subsampling::S444, ..EncodeOptions::default() };
/// assert_eq!(EncodeOptions::default().quality, 85);
/// # let _ = high_fidelity;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodeOptions {
    /// JPEG quality in `[1, 100]`; 50 reproduces the Annex-K tables.
    pub quality: u8,
    /// Chroma subsampling mode.
    pub subsampling: Subsampling,
    /// Restart interval in MCUs (`None` disables DRI/RSTn markers).
    /// Restart markers bound error propagation and enable parallel
    /// decode — at a small size cost.
    pub restart_interval: Option<u16>,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            quality: 85,
            subsampling: Subsampling::S420,
            restart_interval: None,
        }
    }
}

/// Errors returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeJpegError {
    /// The data does not begin with an SOI marker.
    NotAJpeg,
    /// The stream ended (or hit a marker) where entropy data or a segment
    /// body was expected.
    UnexpectedEof,
    /// A frame type other than baseline sequential (SOF0) was found; the
    /// payload is the SOF marker code.
    UnsupportedFrame(u8),
    /// The scan referenced a quantization or Huffman table that was never
    /// defined; the payload names the table kind.
    MissingTable(&'static str),
    /// EOI was reached without any SOS scan.
    MissingScan,
    /// A bit pattern matched no Huffman code.
    BadHuffmanCode,
    /// A structural constraint was violated; the payload describes it.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeJpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeJpegError::NotAJpeg => write!(f, "data does not start with a JPEG SOI marker"),
            DecodeJpegError::UnexpectedEof => write!(f, "unexpected end of JPEG data"),
            DecodeJpegError::UnsupportedFrame(m) => {
                write!(f, "unsupported JPEG frame type (marker 0xff{m:02x})")
            }
            DecodeJpegError::MissingTable(kind) => {
                write!(f, "scan references an undefined {kind} table")
            }
            DecodeJpegError::MissingScan => write!(f, "no scan data before end of image"),
            DecodeJpegError::BadHuffmanCode => write!(f, "invalid huffman code in entropy data"),
            DecodeJpegError::Malformed(what) => write!(f, "malformed JPEG: {what}"),
        }
    }
}

impl std::error::Error for DecodeJpegError {}

/// Peak signal-to-noise ratio between two same-sized images, in dB.
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if dimensions or channel counts differ.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    assert_eq!(a.channels(), b.channels(), "channel mismatch");
    let mse: f64 = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.raw_len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vserve_tensor::PixelFormat;

    fn round_trip(img: &Image, opts: &EncodeOptions) -> (Image, usize) {
        let bytes = encode(img, opts);
        let back = decode(&bytes).expect("decode own output");
        (back, bytes.len())
    }

    #[test]
    fn gradient_round_trip_high_quality() {
        let img = Image::gradient(160, 120);
        let (back, _) = round_trip(
            &img,
            &EncodeOptions {
                quality: 95,
                subsampling: Subsampling::S444,
                ..EncodeOptions::default()
            },
        );
        assert_eq!((back.width(), back.height()), (160, 120));
        let p = psnr(&img, &back);
        assert!(p > 35.0, "psnr {p}");
    }

    #[test]
    fn s420_round_trip_reasonable_quality() {
        let img = Image::gradient(97, 61); // non-multiple-of-16 dims
        let (back, _) = round_trip(&img, &EncodeOptions::default());
        let p = psnr(&img, &back);
        assert!(p > 28.0, "psnr {p}");
    }

    #[test]
    fn grayscale_round_trip() {
        let img = Image::gradient(40, 40).to_gray();
        let (back, _) = round_trip(
            &img,
            &EncodeOptions {
                quality: 90,
                subsampling: Subsampling::S444,
                ..EncodeOptions::default()
            },
        );
        assert_eq!(back.format(), PixelFormat::Gray8);
        let p = psnr(&img, &back);
        assert!(p > 35.0, "psnr {p}");
    }

    #[test]
    fn decode_bit_identical_across_simd_levels() {
        // Full decode (IDCT blocks + upsample/color-convert) must produce
        // the same bytes at every dispatch level. Odd width exercises the
        // strip tail; S420 exercises the subsampled gather path.
        for subsampling in [Subsampling::S444, Subsampling::S420] {
            let img = Image::gradient(97, 43);
            let bytes = encode(
                &img,
                &EncodeOptions {
                    quality: 85,
                    subsampling,
                    ..EncodeOptions::default()
                },
            );
            vserve_simd::set_level(vserve_simd::Level::Scalar);
            let want = decode(&bytes).expect("scalar decode");
            for level in vserve_simd::available_levels() {
                vserve_simd::set_level(level);
                let got = decode(&bytes).expect("decode");
                assert_eq!(
                    want.as_bytes(),
                    got.as_bytes(),
                    "level={level} subsampling={subsampling:?}"
                );
            }
            vserve_simd::reset_level();
        }
    }

    #[test]
    fn quality_controls_size_and_fidelity() {
        let img = Image::noise(96, 96, 3);
        let low = encode(
            &img,
            &EncodeOptions {
                quality: 20,
                subsampling: Subsampling::S420,
                ..EncodeOptions::default()
            },
        );
        let high = encode(
            &img,
            &EncodeOptions {
                quality: 95,
                subsampling: Subsampling::S420,
                ..EncodeOptions::default()
            },
        );
        assert!(
            low.len() < high.len(),
            "q20 {} bytes vs q95 {} bytes",
            low.len(),
            high.len()
        );
        let p_low = psnr(&img, &decode(&low).unwrap());
        let p_high = psnr(&img, &decode(&high).unwrap());
        assert!(p_high > p_low, "psnr {p_high} vs {p_low}");
    }

    #[test]
    fn s420_is_smaller_than_s444() {
        let img = Image::gradient(128, 128);
        let s420 = encode(
            &img,
            &EncodeOptions {
                quality: 85,
                subsampling: Subsampling::S420,
                ..EncodeOptions::default()
            },
        );
        let s444 = encode(
            &img,
            &EncodeOptions {
                quality: 85,
                subsampling: Subsampling::S444,
                ..EncodeOptions::default()
            },
        );
        assert!(s420.len() < s444.len());
    }

    #[test]
    fn tiny_images_survive() {
        for (w, h) in [(1, 1), (1, 9), (9, 1), (7, 7), (8, 8), (17, 17)] {
            let img = Image::gradient(w, h);
            let (back, _) = round_trip(&img, &EncodeOptions::default());
            assert_eq!((back.width(), back.height()), (w, h));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[]).unwrap_err(), DecodeJpegError::NotAJpeg);
        assert_eq!(
            decode(&[0x89, b'P', b'N', b'G']).unwrap_err(),
            DecodeJpegError::NotAJpeg
        );
        // SOI then EOI: no scan.
        assert_eq!(
            decode(&[0xff, 0xd8, 0xff, 0xd9]).unwrap_err(),
            DecodeJpegError::MissingScan
        );
    }

    #[test]
    fn decode_rejects_progressive() {
        // SOI + SOF2 header stub.
        let data = [
            0xff, 0xd8, 0xff, 0xc2, 0x00, 0x0b, 8, 0, 8, 0, 8, 1, 1, 0x11, 0,
        ];
        assert_eq!(
            decode(&data).unwrap_err(),
            DecodeJpegError::UnsupportedFrame(0xc2)
        );
    }

    #[test]
    fn truncated_scan_errors() {
        let img = Image::gradient(32, 32);
        let bytes = encode(&img, &EncodeOptions::default());
        let cut = &bytes[..bytes.len() * 2 / 3];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn restart_intervals_round_trip() {
        let img = Image::gradient(96, 80);
        for dri in [1u16, 2, 3, 7] {
            for subsampling in [Subsampling::S444, Subsampling::S420] {
                let opts = EncodeOptions {
                    quality: 90,
                    subsampling,
                    restart_interval: Some(dri),
                };
                let bytes = encode(&img, &opts);
                // The stream actually contains RSTn markers.
                let rst = bytes
                    .windows(2)
                    .filter(|w| w[0] == 0xff && (0xd0..=0xd7).contains(&w[1]))
                    .count();
                assert!(rst > 0, "no RST markers at dri={dri}");
                let back = decode(&bytes).expect("decode with restarts");
                let p = psnr(&img, &back);
                assert!(p > 30.0, "psnr {p} at dri={dri} {subsampling:?}");
            }
        }
    }

    #[test]
    fn restart_interval_zero_is_disabled() {
        let img = Image::gradient(32, 32);
        let with = encode(
            &img,
            &EncodeOptions {
                restart_interval: Some(0),
                ..EncodeOptions::default()
            },
        );
        let without = encode(&img, &EncodeOptions::default());
        assert_eq!(with, without);
    }

    #[test]
    fn decode_with_threads_bit_identical() {
        use vserve_compute::{Backend, Scratch};
        let img = Image::gradient(97, 61); // ragged dims: partial edge MCUs
        for subsampling in [Subsampling::S444, Subsampling::S420] {
            let bytes = encode(
                &img,
                &EncodeOptions {
                    quality: 90,
                    subsampling,
                    ..EncodeOptions::default()
                },
            );
            let want = decode(&bytes).unwrap();
            for threads in [1, 2, 4] {
                let mut scratch = Scratch::new();
                let got = decode_with(&Backend::new(threads), &mut scratch, &bytes).unwrap();
                assert_eq!(
                    want.as_bytes(),
                    got.as_bytes(),
                    "threads={threads} {subsampling:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_decode_reuses_scratch() {
        use vserve_compute::{Backend, Scratch};
        let bytes = encode(&Image::gradient(64, 48), &EncodeOptions::default());
        let bk = Backend::serial();
        let mut scratch = Scratch::new();
        // The largest-first arena needs a few rounds to settle when big
        // and small requests interleave; then it must stop allocating.
        for _ in 0..4 {
            let _ = decode_with(&bk, &mut scratch, &bytes).unwrap();
        }
        let warm = scratch.allocations();
        for _ in 0..4 {
            let _ = decode_with(&bk, &mut scratch, &bytes).unwrap();
        }
        assert_eq!(scratch.allocations(), warm);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = Image::gradient(8, 8);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
    }

    #[test]
    fn full_scale_decode_is_byte_identical_to_decode() {
        for (w, h) in [(64, 48), (97, 61)] {
            let bytes = encode(&Image::gradient(w, h), &EncodeOptions::default());
            let full = decode(&bytes).unwrap();
            let scaled = decode_scaled(&bytes, DecodeScale::Full).unwrap();
            assert_eq!(full.as_bytes(), scaled.as_bytes());
        }
    }

    #[test]
    fn scaled_decode_output_dimensions() {
        // Ragged sizes: output must be ceil(dim / denominator).
        let bytes = encode(&Image::gradient(97, 61), &EncodeOptions::default());
        for (scale, w, h) in [
            (DecodeScale::Half, 49, 31),
            (DecodeScale::Quarter, 25, 16),
            (DecodeScale::Eighth, 13, 8),
        ] {
            let img = decode_scaled(&bytes, scale).unwrap();
            assert_eq!((img.width(), img.height()), (w, h), "{scale:?}");
        }
    }

    #[test]
    fn eighth_scale_pixels_are_block_means() {
        // DC-only reconstruction: each output pixel is the mean of its
        // 8×8 block, so it must track the box average of the full decode.
        let img = Image::gradient(64, 64);
        let bytes = encode(
            &img,
            &EncodeOptions {
                quality: 95,
                subsampling: Subsampling::S444,
                ..EncodeOptions::default()
            },
        );
        let full = decode(&bytes).unwrap();
        let eighth = decode_scaled(&bytes, DecodeScale::Eighth).unwrap();
        assert_eq!((eighth.width(), eighth.height()), (8, 8));
        for by in 0..8 {
            for bx in 0..8 {
                for c in 0..3 {
                    let mut acc = 0f64;
                    for y in 0..8 {
                        for x in 0..8 {
                            acc += f64::from(full.pixel(bx * 8 + x, by * 8 + y)[c]);
                        }
                    }
                    let mean = acc / 64.0;
                    let got = f64::from(eighth.pixel(bx, by)[c]);
                    assert!(
                        (got - mean).abs() < 3.0,
                        "block ({bx},{by}) ch {c}: {got} vs mean {mean}"
                    );
                }
            }
        }
    }

    #[test]
    fn scaled_decode_bit_identical_across_threads() {
        use vserve_compute::{Backend, Scratch};
        let bytes = encode(&Image::gradient(97, 61), &EncodeOptions::default());
        for scale in [DecodeScale::Half, DecodeScale::Quarter, DecodeScale::Eighth] {
            let want = decode_scaled(&bytes, scale).unwrap();
            for threads in [2, 4] {
                let mut scratch = Scratch::new();
                let got = decode_scaled_with(&Backend::new(threads), &mut scratch, &bytes, scale)
                    .unwrap();
                assert_eq!(
                    want.as_bytes(),
                    got.as_bytes(),
                    "{scale:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn probe_dimensions_reads_header_only() {
        let bytes = encode(&Image::gradient(123, 45), &EncodeOptions::default());
        assert_eq!(probe_dimensions(&bytes).unwrap(), (123, 45));
        assert_eq!(
            probe_dimensions(&[1, 2, 3, 4]).unwrap_err(),
            DecodeJpegError::NotAJpeg
        );
        // Truncating right after the SOF segment must still succeed: the
        // probe never touches entropy data.
        let sos = bytes
            .windows(2)
            .position(|w| w == [0xff, 0xda])
            .expect("has SOS");
        assert_eq!(probe_dimensions(&bytes[..sos]).unwrap(), (123, 45));
    }

    /// Satellite regression: chroma upsampling index math at the right and
    /// bottom edges of 4:2:0 images whose dimensions are not multiples of
    /// 16 (partial edge MCUs). A future off-by-one in the subsampled-grid
    /// mapping would corrupt exactly these strips while leaving the global
    /// PSNR nearly unchanged, so the strips are checked in isolation.
    #[test]
    fn s420_edge_strips_survive_odd_dimensions() {
        let strip_psnr =
            |a: &Image, b: &Image, xs: std::ops::Range<usize>, ys: std::ops::Range<usize>| {
                let mut se = 0f64;
                let mut n = 0f64;
                for y in ys.clone() {
                    for x in xs.clone() {
                        for c in 0..3 {
                            let d = f64::from(a.pixel(x, y)[c]) - f64::from(b.pixel(x, y)[c]);
                            se += d * d;
                            n += 1.0;
                        }
                    }
                }
                10.0 * (255.0f64 * 255.0 / (se / n)).log10()
            };
        for (w, h) in [(17, 11), (23, 9), (33, 19), (97, 61)] {
            // Chroma-heavy content: red→blue ramp (strong Cb/Cr variation).
            let mut img = Image::zeros(w, h, PixelFormat::Rgb8);
            for y in 0..h {
                for x in 0..w {
                    let r = (x * 255 / w.max(2).saturating_sub(1).max(1)) as u8;
                    img.put_pixel(x, y, [r, 64, 255 - r]);
                }
            }
            let bytes = encode(
                &img,
                &EncodeOptions {
                    quality: 90,
                    subsampling: Subsampling::S420,
                    ..EncodeOptions::default()
                },
            );
            let back = decode(&bytes).unwrap();
            let right = strip_psnr(&img, &back, w.saturating_sub(2)..w, 0..h);
            let bottom = strip_psnr(&img, &back, 0..w, h.saturating_sub(2)..h);
            assert!(
                right > 24.0 && bottom > 24.0,
                "{w}x{h}: right strip {right:.1} dB, bottom strip {bottom:.1} dB"
            );
            // Scaled decode must handle the same ragged geometry.
            for scale in [DecodeScale::Half, DecodeScale::Quarter, DecodeScale::Eighth] {
                let s = decode_scaled(&bytes, scale).unwrap();
                assert_eq!(
                    (s.width(), s.height()),
                    (scale.apply(w), scale.apply(h)),
                    "{w}x{h} {scale:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_images_round_trip_with_bounded_error(
            w in 1usize..48, h in 1usize..48, seed in any::<u64>(),
            quality in 60u8..=95,
        ) {
            let img = Image::gradient(w, h); // band-limited: quality bound holds
            let _ = seed;
            let bytes = encode(&img, &EncodeOptions { quality, subsampling: Subsampling::S444, ..EncodeOptions::default() });
            let back = decode(&bytes).unwrap();
            prop_assert_eq!((back.width(), back.height()), (w, h));
            let p = psnr(&img, &back);
            prop_assert!(p > 25.0, "psnr {} at q{} {}x{}", p, quality, w, h);
        }

        /// Satellite: DCT-domain scaled decode must track the reference
        /// chain (full decode + area downsample to the same dimensions)
        /// within a calibrated PSNR bound on random JPEGs. The bound is
        /// loose enough for the filter mismatch (band-limited
        /// reconstruction vs box average) yet tight enough to catch
        /// normalization or indexing errors, which cost tens of dB.
        #[test]
        fn scaled_decode_tracks_area_downsample(
            w in 16usize..80, h in 16usize..80, seed in any::<u64>(),
            quality in 70u8..=95,
        ) {
            // Mildly textured content, like the synthetic workload: a
            // gradient with bounded noise so the PSNR bound is stable.
            let mut img = Image::gradient(w, h);
            let noise = Image::noise(w, h, seed);
            for (p, q) in img.as_bytes_mut().iter_mut().zip(noise.as_bytes()) {
                *p = ((u16::from(*p) * 3 + u16::from(*q)) / 4) as u8;
            }
            for subsampling in [Subsampling::S444, Subsampling::S420] {
                let bytes = encode(&img, &EncodeOptions { quality, subsampling, ..EncodeOptions::default() });
                let full = decode(&bytes).unwrap();
                for scale in [DecodeScale::Half, DecodeScale::Quarter, DecodeScale::Eighth] {
                    let scaled = decode_scaled(&bytes, scale).unwrap();
                    let reference = vserve_tensor::ops::resize_area(
                        &full, scale.apply(w), scale.apply(h));
                    // Calibrated: ragged-edge blocks at Eighth include
                    // encoder padding (replicated pixels) the reference
                    // never sees, which costs a few dB on tiny images;
                    // observed minimum ≈ 21.7 dB across the dim range.
                    let p = psnr(&reference, &scaled);
                    prop_assert!(
                        p > 19.0,
                        "{}x{} q{} {:?} {:?}: psnr {:.1}", w, h, quality, subsampling, scale, p
                    );
                }
            }
        }

        #[test]
        fn decoder_never_panics_on_mutations(
            seed in any::<u64>(), cut in 0usize..400, flip in 0usize..400
        ) {
            let img = Image::gradient(24, 24);
            let mut bytes = encode(&img, &EncodeOptions::default());
            let _ = seed;
            if !bytes.is_empty() {
                let cut = cut % bytes.len();
                bytes.truncate(bytes.len() - cut);
            }
            if !bytes.is_empty() {
                let i = flip % bytes.len();
                bytes[i] ^= 0x55;
            }
            let _ = decode(&bytes); // must not panic
        }
    }
}
