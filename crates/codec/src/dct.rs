//! 8×8 forward and inverse discrete cosine transform.
//!
//! Uses the separable matrix form of the orthonormal DCT-II: with
//! `C[u][x] = c(u)/2 · cos((2x+1)uπ/16)`, the forward transform is
//! `F = C · f · Cᵀ` and the inverse is `f = Cᵀ · F · C`. The basis is
//! precomputed once; each block costs two 8×8 matrix products.

/// Precomputed orthonormal DCT-II basis, `BASIS[u][x]`.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0f64 / 2.0f64.sqrt()) / 2.0
            } else {
                0.5
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (cu * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        b
    })
}

/// Forward 8×8 DCT of a level-shifted block (raster order in, raster out).
pub fn fdct(block: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    // rows: tmp = f · Cᵀ  (tmp[y][u] = Σx f[y][x] C[u][x])
    let mut tmp = [0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0.0;
            for x in 0..8 {
                s += block[y * 8 + x] * c[u][x];
            }
            tmp[y * 8 + u] = s;
        }
    }
    // cols: F[v][u] = Σy C[v][y] tmp[y][u]
    let mut out = [0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut s = 0.0;
            for y in 0..8 {
                s += c[v][y] * tmp[y * 8 + u];
            }
            out[v * 8 + u] = s;
        }
    }
    out
}

/// Inverse 8×8 DCT (raster order in, raster out).
pub fn idct(coeffs: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    // rows: tmp[v][x] = Σu coeffs[v][u] C[u][x]
    let mut tmp = [0f32; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for u in 0..8 {
                s += coeffs[v * 8 + u] * c[u][x];
            }
            tmp[v * 8 + x] = s;
        }
    }
    // cols: f[y][x] = Σv C[v][y] tmp[v][x]
    let mut out = [0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for v in 0..8 {
                s += c[v][y] * tmp[v * 8 + x];
            }
            out[y * 8 + x] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_block_has_only_dc() {
        let block = [32.0f32; 64];
        let f = fdct(&block);
        // Orthonormal DCT of a constant c is 8c at DC (c · 8) … with this
        // normalization DC = mean × 8.
        assert!((f[0] - 32.0 * 8.0).abs() < 1e-3, "dc {}", f[0]);
        for (i, &v) in f.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-3, "ac[{i}] = {v}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 255) as f32 - 128.0;
        }
        let f = fdct(&block);
        let e_spatial: f32 = block.iter().map(|x| x * x).sum();
        let e_freq: f32 = f.iter().map(|x| x * x).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }

    proptest! {
        #[test]
        fn round_trip(vals in prop::collection::vec(-128f32..128.0, 64)) {
            let mut block = [0f32; 64];
            block.copy_from_slice(&vals);
            let rec = idct(&fdct(&block));
            for (a, b) in block.iter().zip(&rec) {
                prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }
}
