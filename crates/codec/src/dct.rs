//! 8×8 forward and inverse discrete cosine transform.
//!
//! Uses the separable matrix form of the orthonormal DCT-II: with
//! `C[u][x] = c(u)/2 · cos((2x+1)uπ/16)`, the forward transform is
//! `F = C · f · Cᵀ` and the inverse is `f = Cᵀ · F · C`. The basis is
//! precomputed once; each block costs two 8×8 matrix products.

/// Precomputed orthonormal DCT-II basis, `BASIS[u][x]`.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate() {
            let cu = if u == 0 {
                (1.0f64 / 2.0f64.sqrt()) / 2.0
            } else {
                0.5
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (cu * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        b
    })
}

/// Forward 8×8 DCT of a level-shifted block (raster order in, raster out).
pub fn fdct(block: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    // rows: tmp = f · Cᵀ  (tmp[y][u] = Σx f[y][x] C[u][x])
    let mut tmp = [0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0.0;
            for x in 0..8 {
                s += block[y * 8 + x] * c[u][x];
            }
            tmp[y * 8 + u] = s;
        }
    }
    // cols: F[v][u] = Σy C[v][y] tmp[y][u]
    let mut out = [0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut s = 0.0;
            for y in 0..8 {
                s += c[v][y] * tmp[y * 8 + u];
            }
            out[v * 8 + u] = s;
        }
    }
    out
}

/// Precomputed scaled reconstruction bases `S_n[u][x]` for n ∈ {1, 2, 4}.
///
/// An n-point reconstruction from the top-left n×n coefficients of an
/// 8-point orthonormal DCT uses `S_n[u][x] = α(u)·cos((2x+1)uπ/(2n))`
/// with the *same* α as the 8-point basis: the n-point orthonormal
/// weights β_n(u) combine with the √(n/8) coefficient rescaling between
/// block sizes so that β_n(0)·√(n/8) = 1/(2√2) and β_n(u>0)·√(n/8) = 1/2.
/// Each reconstructed pixel then approximates the box average of the
/// corresponding (8/n)×(8/n) region of the full-resolution block
/// (exactly the mean for n = 1, since DC = mean × 8).
fn scaled_basis(n: usize) -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASES: [OnceLock<[[f32; 8]; 8]>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let slot = match n {
        1 => &BASES[0],
        2 => &BASES[1],
        4 => &BASES[2],
        _ => panic!("scaled_basis: n must be 1, 2 or 4, got {n}"),
    };
    slot.get_or_init(|| {
        let mut b = [[0f32; 8]; 8];
        for (u, row) in b.iter_mut().enumerate().take(n) {
            let cu = if u == 0 {
                (1.0f64 / 2.0f64.sqrt()) / 2.0
            } else {
                0.5
            };
            for (x, v) in row.iter_mut().enumerate().take(n) {
                *v = (cu
                    * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / (2.0 * n as f64))
                        .cos()) as f32;
            }
        }
        b
    })
}

/// Scaled inverse DCT: reconstructs an n×n pixel block (n ∈ {1, 2, 4})
/// directly from the top-left n×n DCT coefficients of an 8×8 block,
/// writing raster order into `out[..n*n]`.
///
/// This is the libjpeg-style reduced-resolution IDCT: only n² of the 64
/// coefficients are touched and only n² output pixels are produced, so
/// the arithmetic shrinks by ~(8/n)³ versus [`idct`] + box downsample.
pub fn idct_scaled(coeffs: &[f32; 64], n: usize, out: &mut [f32]) {
    debug_assert!(matches!(n, 1 | 2 | 4), "idct_scaled: bad n {n}");
    debug_assert!(out.len() >= n * n);
    let c = scaled_basis(n);
    // rows: tmp[v][x] = Σ_{u<n} coeffs[v][u] S[u][x]
    let mut tmp = [0f32; 16];
    for v in 0..n {
        for x in 0..n {
            let mut s = 0.0;
            for u in 0..n {
                s += coeffs[v * 8 + u] * c[u][x];
            }
            tmp[v * n + x] = s;
        }
    }
    // cols: f[y][x] = Σ_{v<n} S[v][y] tmp[v][x]
    for y in 0..n {
        for x in 0..n {
            let mut s = 0.0;
            for v in 0..n {
                s += c[v][y] * tmp[v * n + x];
            }
            out[y * n + x] = s;
        }
    }
}

/// Inverse 8×8 DCT (raster order in, raster out).
///
/// Routes through the `vserve-simd` 8-lane micro-kernel when runtime
/// dispatch selects a vector level; both paths accumulate each output in
/// ascending reduction order with unfused multiply-add, so the result is
/// bit-identical either way.
pub fn idct(coeffs: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    if !vserve_simd::active_level().is_scalar() {
        return vserve_simd::kernels::idct8x8(coeffs, c);
    }
    // rows: tmp[v][x] = Σu coeffs[v][u] C[u][x]
    let mut tmp = [0f32; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for u in 0..8 {
                s += coeffs[v * 8 + u] * c[u][x];
            }
            tmp[v * 8 + x] = s;
        }
    }
    // cols: f[y][x] = Σv C[v][y] tmp[v][x]
    let mut out = [0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0.0;
            for v in 0..8 {
                s += c[v][y] * tmp[v * 8 + x];
            }
            out[y * 8 + x] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_block_has_only_dc() {
        let block = [32.0f32; 64];
        let f = fdct(&block);
        // Orthonormal DCT of a constant c is 8c at DC (c · 8) … with this
        // normalization DC = mean × 8.
        assert!((f[0] - 32.0 * 8.0).abs() < 1e-3, "dc {}", f[0]);
        for (i, &v) in f.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-3, "ac[{i}] = {v}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 255) as f32 - 128.0;
        }
        let f = fdct(&block);
        let e_spatial: f32 = block.iter().map(|x| x * x).sum();
        let e_freq: f32 = f.iter().map(|x| x * x).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }

    #[test]
    fn scaled_idct_of_dc_only_block_is_constant() {
        let mut coeffs = [0f32; 64];
        coeffs[0] = 42.0 * 8.0; // DC of a constant-42 block
        for n in [1usize, 2, 4] {
            let mut out = [0f32; 16];
            idct_scaled(&coeffs, n, &mut out);
            for &v in &out[..n * n] {
                assert!((v - 42.0).abs() < 1e-3, "n={n}: {v}");
            }
        }
    }

    #[test]
    fn one_point_scaled_idct_is_block_mean() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 73 + 19) % 251) as f32 - 100.0;
        }
        let mean: f32 = block.iter().sum::<f32>() / 64.0;
        let f = fdct(&block);
        let mut out = [0f32; 1];
        idct_scaled(&f, 1, &mut out);
        assert!((out[0] - mean).abs() < 1e-2, "{} vs {mean}", out[0]);
    }

    /// For a band-limited block (only frequencies below n present) the
    /// scaled reconstruction equals the box-downsampled full
    /// reconstruction — both are exact resamplings of the same smooth
    /// surface only when the signal is constant within each box, so test
    /// against direct cosine evaluation instead: the n-point output must
    /// equal the n-point inverse of the √(n/8)-rescaled coefficients.
    #[test]
    fn scaled_idct_matches_reference_cosine_sum() {
        let mut coeffs = [0f32; 64];
        // A few low-frequency coefficients.
        coeffs[0] = 800.0;
        coeffs[1] = 120.0;
        coeffs[8] = -60.0;
        coeffs[9] = 35.0;
        for n in [2usize, 4] {
            let mut out = [0f32; 16];
            idct_scaled(&coeffs, n, &mut out);
            for y in 0..n {
                for x in 0..n {
                    let mut s = 0.0f64;
                    for v in 0..n {
                        for u in 0..n {
                            let au = if u == 0 {
                                1.0 / (2.0 * 2.0f64.sqrt())
                            } else {
                                0.5
                            };
                            let av = if v == 0 {
                                1.0 / (2.0 * 2.0f64.sqrt())
                            } else {
                                0.5
                            };
                            s += f64::from(coeffs[v * 8 + u])
                                * au
                                * av
                                * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI
                                    / (2.0 * n as f64))
                                    .cos()
                                * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI
                                    / (2.0 * n as f64))
                                    .cos();
                        }
                    }
                    let got = out[y * n + x];
                    assert!(
                        (f64::from(got) - s).abs() < 1e-3,
                        "n={n} ({x},{y}): {got} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn idct_bit_identical_across_simd_levels() {
        // The SIMD route must be invisible: same bits as the scalar loop
        // at every dispatch level available on this host.
        let mut coeffs = [0f32; 64];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = ((i * 37 % 255) as f32 - 127.0) / 3.0;
        }
        vserve_simd::set_level(vserve_simd::Level::Scalar);
        let want = idct(&coeffs);
        for level in vserve_simd::available_levels() {
            vserve_simd::set_level(level);
            let got = idct(&coeffs);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "level={level}"
            );
        }
        vserve_simd::reset_level();
    }

    proptest! {
        #[test]
        fn round_trip(vals in prop::collection::vec(-128f32..128.0, 64)) {
            let mut block = [0f32; 64];
            block.copy_from_slice(&vals);
            let rec = idct(&fdct(&block));
            for (a, b) in block.iter().zip(&rec) {
                prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
            }
        }
    }
}
