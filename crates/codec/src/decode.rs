//! Baseline sequential JPEG decoder.
//!
//! Entropy (Huffman) decoding is inherently serial — each code's length is
//! only known once the previous one is decoded — but everything after it
//! is not. [`decode_with`] therefore splits the scan into two phases:
//! a sequential pass that stores dequantized DCT coefficients per block,
//! then data-parallel per-block-row IDCT and per-pixel-row color
//! conversion on a [`Backend`]. Both phases are pure per-element
//! functions, so output bytes are bit-identical for any thread count.

use std::cell::RefCell;

use vserve_compute::{Backend, Scratch};
use vserve_tensor::{Image, PixelFormat};

use crate::bits::BitReader;
use crate::dct::{idct, idct_scaled};
use crate::huffman::{extend, HuffDecoder};
use crate::tables::ZIGZAG;
use crate::DecodeJpegError;

/// Reduced-resolution decode factor, applied in the DCT domain.
///
/// At `Half`/`Quarter`/`Eighth`, each 8×8 coefficient block is
/// reconstructed directly to 4×4/2×2/1×1 pixels from its top-left
/// coefficients (libjpeg-style scaled inverse transforms). Entropy
/// decoding is unchanged — it is inherently full-cost — but the IDCT,
/// plane buffers, upsampling and color conversion all shrink by the
/// square of the factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeScale {
    /// Full resolution; byte-identical to [`decode`].
    Full,
    /// 1/2 in each dimension (8×8 → 4×4 blocks).
    Half,
    /// 1/4 in each dimension (8×8 → 2×2 blocks).
    Quarter,
    /// 1/8 in each dimension (8×8 → DC-only 1×1 blocks).
    Eighth,
}

impl DecodeScale {
    /// Downscale denominator: 1, 2, 4 or 8.
    pub fn denominator(self) -> usize {
        match self {
            DecodeScale::Full => 1,
            DecodeScale::Half => 2,
            DecodeScale::Quarter => 4,
            DecodeScale::Eighth => 8,
        }
    }

    /// Reconstructed pixels per 8×8 block side: 8, 4, 2 or 1.
    pub fn block_size(self) -> usize {
        8 / self.denominator()
    }

    /// Output size of a source dimension decoded at this scale.
    pub fn apply(self, dim: usize) -> usize {
        dim.div_ceil(self.denominator())
    }

    /// Largest scale whose output still covers a `target_side` square —
    /// i.e. the residual resize after the scaled decode is always a
    /// downsample (factor in [1, 2) unless even `Eighth` is too big).
    pub fn for_target(src_w: usize, src_h: usize, target_side: usize) -> DecodeScale {
        if target_side == 0 {
            return DecodeScale::Full;
        }
        for s in [DecodeScale::Eighth, DecodeScale::Quarter, DecodeScale::Half] {
            if s.apply(src_w) >= target_side && s.apply(src_h) >= target_side {
                return s;
            }
        }
        DecodeScale::Full
    }
}

/// Parses just enough of a JPEG byte stream to report the frame
/// dimensions `(width, height)` without decoding any pixel data.
///
/// # Errors
///
/// Returns a [`DecodeJpegError`] if the stream is not a baseline JPEG or
/// ends before a SOF0 marker.
pub fn probe_dimensions(data: &[u8]) -> Result<(usize, usize), DecodeJpegError> {
    if data.len() < 4 || data[0] != 0xff || data[1] != 0xd8 {
        return Err(DecodeJpegError::NotAJpeg);
    }
    let mut pos = 2usize;
    loop {
        while pos < data.len() && data[pos] != 0xff {
            pos += 1;
        }
        while pos < data.len() && data[pos] == 0xff {
            pos += 1;
        }
        if pos >= data.len() {
            return Err(DecodeJpegError::UnexpectedEof);
        }
        let marker = data[pos];
        pos += 1;
        match marker {
            0xc0 => {
                let len = read_u16(data, pos)? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(DecodeJpegError::UnexpectedEof)?;
                let frame = parse_sof(seg)?;
                return Ok((frame.width, frame.height));
            }
            0xc1..=0xc3 | 0xc5..=0xc7 | 0xc9..=0xcb | 0xcd..=0xcf => {
                return Err(DecodeJpegError::UnsupportedFrame(marker));
            }
            0xd9 | 0xda => return Err(DecodeJpegError::MissingScan),
            0x01 | 0xd0..=0xd7 => {}
            _ => {
                let len = read_u16(data, pos)? as usize;
                if len < 2 {
                    return Err(DecodeJpegError::Malformed("segment length < 2"));
                }
                pos += len;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Component {
    id: u8,
    h: usize,
    v: usize,
    tq: usize,
    dc_table: usize,
    ac_table: usize,
}

struct Frame {
    width: usize,
    height: usize,
    components: Vec<Component>,
}

/// Parsed decoder state.
struct Decoder {
    quant: [Option<[u16; 64]>; 4],
    dc_tables: [Option<HuffDecoder>; 4],
    ac_tables: [Option<HuffDecoder>; 4],
    frame: Option<Frame>,
    restart_interval: usize,
}

impl Decoder {
    fn new() -> Self {
        Decoder {
            quant: [None, None, None, None],
            dc_tables: [None, None, None, None],
            ac_tables: [None, None, None, None],
            frame: None,
            restart_interval: 0,
        }
    }
}

fn read_u16(data: &[u8], pos: usize) -> Result<u16, DecodeJpegError> {
    if pos + 1 >= data.len() {
        return Err(DecodeJpegError::UnexpectedEof);
    }
    Ok(u16::from(data[pos]) << 8 | u16::from(data[pos + 1]))
}

thread_local! {
    /// Arena for [`decode`] callers that don't manage a [`Scratch`]
    /// themselves: repeated decodes on one thread reuse the same
    /// coefficient and plane buffers.
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's shared decode scratch arena.
pub(crate) fn with_local_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    LOCAL_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Decodes a baseline JFIF/JPEG byte stream into an [`Image`].
///
/// Supports 8-bit baseline sequential JPEG (SOF0) with 1 or 3 components,
/// arbitrary sampling factors up to 2×2, optional restart intervals, and
/// standard or custom Huffman/quantization tables.
///
/// Single-threaded wrapper over [`decode_with`].
///
/// # Errors
///
/// Returns a [`DecodeJpegError`] describing the first structural problem
/// found: missing SOI, unsupported frame type, truncated segments,
/// undefined tables, or corrupt entropy data.
pub fn decode(data: &[u8]) -> Result<Image, DecodeJpegError> {
    LOCAL_SCRATCH.with(|s| decode_with(&Backend::serial(), &mut s.borrow_mut(), data))
}

/// Decodes a baseline JPEG at reduced resolution via DCT-domain scaling.
///
/// The output image is `ceil(w/d) × ceil(h/d)` for denominator `d`; each
/// pixel approximates the box average of the corresponding d×d source
/// region. `DecodeScale::Full` is byte-identical to [`decode`].
///
/// Single-threaded wrapper over [`decode_scaled_with`].
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_scaled(data: &[u8], scale: DecodeScale) -> Result<Image, DecodeJpegError> {
    LOCAL_SCRATCH.with(|s| decode_scaled_with(&Backend::serial(), &mut s.borrow_mut(), data, scale))
}

/// [`decode_scaled`] with an explicit compute backend and scratch arena.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_scaled_with(
    bk: &Backend,
    scratch: &mut Scratch,
    data: &[u8],
    scale: DecodeScale,
) -> Result<Image, DecodeJpegError> {
    decode_inner(bk, scratch, data, scale)
}

/// [`decode`] with an explicit compute backend and scratch arena.
///
/// Entropy decoding stays sequential; IDCT and color conversion run in
/// parallel over disjoint row bands, producing bytes bit-identical to the
/// serial decoder. Coefficient and plane temporaries come from `scratch`,
/// so a preprocessing worker that decodes frame after frame stops touching
/// the allocator once warm.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_with(
    bk: &Backend,
    scratch: &mut Scratch,
    data: &[u8],
) -> Result<Image, DecodeJpegError> {
    decode_inner(bk, scratch, data, DecodeScale::Full)
}

fn decode_inner(
    bk: &Backend,
    scratch: &mut Scratch,
    data: &[u8],
    scale: DecodeScale,
) -> Result<Image, DecodeJpegError> {
    if data.len() < 4 || data[0] != 0xff || data[1] != 0xd8 {
        return Err(DecodeJpegError::NotAJpeg);
    }
    let mut dec = Decoder::new();
    let mut pos = 2usize;

    loop {
        // Seek to the next marker (skip fill bytes 0xFF).
        while pos < data.len() && data[pos] != 0xff {
            pos += 1;
        }
        while pos < data.len() && data[pos] == 0xff {
            pos += 1;
        }
        if pos >= data.len() {
            return Err(DecodeJpegError::UnexpectedEof);
        }
        let marker = data[pos];
        pos += 1;
        match marker {
            0xd9 => return Err(DecodeJpegError::MissingScan), // EOI before SOS
            0xc0 => {
                // SOF0 baseline
                let len = read_u16(data, pos)? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(DecodeJpegError::UnexpectedEof)?;
                dec.frame = Some(parse_sof(seg)?);
                pos += len;
            }
            0xc1..=0xc3 | 0xc5..=0xc7 | 0xc9..=0xcb | 0xcd..=0xcf => {
                return Err(DecodeJpegError::UnsupportedFrame(marker));
            }
            0xc4 => {
                // DHT
                let len = read_u16(data, pos)? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(DecodeJpegError::UnexpectedEof)?;
                parse_dht(seg, &mut dec)?;
                pos += len;
            }
            0xdb => {
                // DQT
                let len = read_u16(data, pos)? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(DecodeJpegError::UnexpectedEof)?;
                parse_dqt(seg, &mut dec)?;
                pos += len;
            }
            0xdd => {
                // DRI
                let len = read_u16(data, pos)? as usize;
                if len < 4 {
                    return Err(DecodeJpegError::Malformed("short DRI segment"));
                }
                dec.restart_interval = read_u16(data, pos + 2)? as usize;
                pos += len;
            }
            0xda => {
                // SOS: parse header then decode the scan.
                let len = read_u16(data, pos)? as usize;
                let seg = data
                    .get(pos + 2..pos + len)
                    .ok_or(DecodeJpegError::UnexpectedEof)?;
                parse_sos(seg, &mut dec)?;
                pos += len;
                let ecs = data.get(pos..).ok_or(DecodeJpegError::UnexpectedEof)?;
                return decode_scan(&dec, ecs, bk, scratch, scale);
            }
            0x01 | 0xd0..=0xd7 => {} // TEM/RSTn: standalone, no length
            _ => {
                // Any other segment (APPn, COM, …): skip by length.
                let len = read_u16(data, pos)? as usize;
                if len < 2 {
                    return Err(DecodeJpegError::Malformed("segment length < 2"));
                }
                pos += len;
            }
        }
    }
}

fn parse_sof(seg: &[u8]) -> Result<Frame, DecodeJpegError> {
    if seg.len() < 6 {
        return Err(DecodeJpegError::Malformed("short SOF segment"));
    }
    if seg[0] != 8 {
        return Err(DecodeJpegError::Malformed("only 8-bit precision supported"));
    }
    let height = usize::from(seg[1]) << 8 | usize::from(seg[2]);
    let width = usize::from(seg[3]) << 8 | usize::from(seg[4]);
    let ncomp = seg[5] as usize;
    if width == 0 || height == 0 {
        return Err(DecodeJpegError::Malformed("zero image dimension"));
    }
    if !(ncomp == 1 || ncomp == 3) {
        return Err(DecodeJpegError::Malformed(
            "only 1 or 3 components supported",
        ));
    }
    if seg.len() < 6 + 3 * ncomp {
        return Err(DecodeJpegError::Malformed("short SOF component list"));
    }
    let mut components = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let base = 6 + 3 * c;
        let id = seg[base];
        let h = (seg[base + 1] >> 4) as usize;
        let v = (seg[base + 1] & 0x0f) as usize;
        let tq = seg[base + 2] as usize;
        if !(1..=2).contains(&h) || !(1..=2).contains(&v) {
            return Err(DecodeJpegError::Malformed(
                "sampling factors above 2 not supported",
            ));
        }
        if tq > 3 {
            return Err(DecodeJpegError::Malformed("quant table id out of range"));
        }
        components.push(Component {
            id,
            h,
            v,
            tq,
            dc_table: 0,
            ac_table: 0,
        });
    }
    Ok(Frame {
        width,
        height,
        components,
    })
}

fn parse_dqt(mut seg: &[u8], dec: &mut Decoder) -> Result<(), DecodeJpegError> {
    while !seg.is_empty() {
        let pq = seg[0] >> 4;
        let tq = (seg[0] & 0x0f) as usize;
        if tq > 3 {
            return Err(DecodeJpegError::Malformed("quant table id out of range"));
        }
        let (table, rest) = match pq {
            0 => {
                if seg.len() < 65 {
                    return Err(DecodeJpegError::Malformed("short DQT table"));
                }
                let mut t = [0u16; 64];
                for (zz, &b) in seg[1..65].iter().enumerate() {
                    t[ZIGZAG[zz]] = u16::from(b);
                }
                (t, &seg[65..])
            }
            1 => {
                if seg.len() < 129 {
                    return Err(DecodeJpegError::Malformed("short 16-bit DQT table"));
                }
                let mut t = [0u16; 64];
                for zz in 0..64 {
                    t[ZIGZAG[zz]] = u16::from(seg[1 + 2 * zz]) << 8 | u16::from(seg[2 + 2 * zz]);
                }
                (t, &seg[129..])
            }
            _ => return Err(DecodeJpegError::Malformed("bad DQT precision")),
        };
        dec.quant[tq] = Some(table);
        seg = rest;
    }
    Ok(())
}

fn parse_dht(mut seg: &[u8], dec: &mut Decoder) -> Result<(), DecodeJpegError> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(DecodeJpegError::Malformed("short DHT header"));
        }
        let class = seg[0] >> 4;
        let id = (seg[0] & 0x0f) as usize;
        if id > 3 || class > 1 {
            return Err(DecodeJpegError::Malformed("bad DHT class/id"));
        }
        let mut bits = [0u8; 16];
        bits.copy_from_slice(&seg[1..17]);
        let nvals: usize = bits.iter().map(|&b| b as usize).sum();
        if seg.len() < 17 + nvals {
            return Err(DecodeJpegError::Malformed("short DHT values"));
        }
        let values = seg[17..17 + nvals].to_vec();
        let table = HuffDecoder::from_bits_values(&bits, values);
        if class == 0 {
            dec.dc_tables[id] = Some(table);
        } else {
            dec.ac_tables[id] = Some(table);
        }
        seg = &seg[17 + nvals..];
    }
    Ok(())
}

fn parse_sos(seg: &[u8], dec: &mut Decoder) -> Result<(), DecodeJpegError> {
    let frame = dec.frame.as_mut().ok_or(DecodeJpegError::MissingScan)?;
    if seg.is_empty() {
        return Err(DecodeJpegError::Malformed("empty SOS segment"));
    }
    let ncomp = seg[0] as usize;
    if ncomp != frame.components.len() {
        return Err(DecodeJpegError::Malformed(
            "interleaved scan must cover all components",
        ));
    }
    if seg.len() < 1 + 2 * ncomp + 3 {
        return Err(DecodeJpegError::Malformed("short SOS segment"));
    }
    for c in 0..ncomp {
        let id = seg[1 + 2 * c];
        let tables = seg[2 + 2 * c];
        let comp = frame
            .components
            .iter_mut()
            .find(|comp| comp.id == id)
            .ok_or(DecodeJpegError::Malformed(
                "SOS references unknown component",
            ))?;
        comp.dc_table = (tables >> 4) as usize;
        comp.ac_table = (tables & 0x0f) as usize;
    }
    Ok(())
}

fn decode_scan(
    dec: &Decoder,
    ecs: &[u8],
    bk: &Backend,
    scratch: &mut Scratch,
    scale: DecodeScale,
) -> Result<Image, DecodeJpegError> {
    let frame = dec.frame.as_ref().ok_or(DecodeJpegError::MissingScan)?;
    let max_h = frame.components.iter().map(|c| c.h).max().unwrap();
    let max_v = frame.components.iter().map(|c| c.v).max().unwrap();
    let mcus_x = frame.width.div_ceil(8 * max_h);
    let mcus_y = frame.height.div_ceil(8 * max_v);

    // Phase 1 (sequential): entropy-decode every block's dequantized DCT
    // coefficients. Blocks are stored per component, 64 floats each,
    // indexed ((my·mcus_x + mx)·v + by)·h + bx.
    let mut coeffs: Vec<Vec<f32>> = frame
        .components
        .iter()
        .map(|c| scratch.take(mcus_y * mcus_x * c.v * c.h * 64))
        .collect();

    let mut segment = ecs;
    let mut reader = BitReader::new(segment);
    let mut preds = vec![0i32; frame.components.len()];
    let mut mcus_until_restart = dec.restart_interval;

    for my in 0..mcus_y {
        for mx in 0..mcus_x {
            if dec.restart_interval > 0 && mcus_until_restart == 0 {
                // Skip to the RSTn marker and resynchronize.
                let consumed = reader.byte_pos();
                let rest = &segment[consumed..];
                let mut i = 0;
                while i + 1 < rest.len() {
                    if rest[i] == 0xff && (0xd0..=0xd7).contains(&rest[i + 1]) {
                        break;
                    }
                    i += 1;
                }
                if i + 1 >= rest.len() {
                    return Err(DecodeJpegError::UnexpectedEof);
                }
                segment = &rest[i + 2..];
                reader = BitReader::new(segment);
                preds.fill(0);
                mcus_until_restart = dec.restart_interval;
            }
            if dec.restart_interval > 0 {
                mcus_until_restart -= 1;
            }

            for (ci, comp) in frame.components.iter().enumerate() {
                let quant = dec.quant[comp.tq]
                    .as_ref()
                    .ok_or(DecodeJpegError::MissingTable("quantization"))?;
                let dc = dec.dc_tables[comp.dc_table]
                    .as_ref()
                    .ok_or(DecodeJpegError::MissingTable("DC Huffman"))?;
                let ac = dec.ac_tables[comp.ac_table]
                    .as_ref()
                    .ok_or(DecodeJpegError::MissingTable("AC Huffman"))?;

                for by in 0..comp.v {
                    for bx in 0..comp.h {
                        let block = decode_block(&mut reader, dc, ac, quant, &mut preds[ci])?;
                        let b = ((my * mcus_x + mx) * comp.v + by) * comp.h + bx;
                        coeffs[ci][b * 64..(b + 1) * 64].copy_from_slice(&block);
                    }
                }
            }
        }
    }

    // Phase 2 (parallel): IDCT each block into its component plane at
    // native (subsampled) resolution, padded to whole MCUs. Each worker
    // owns a band of n-pixel block rows (n = scaled block size), so
    // writes never overlap. At reduced scales each 8×8 coefficient block
    // reconstructs directly to n×n pixels.
    let n = scale.block_size();
    let mut planes: Vec<Vec<f32>> = Vec::new();
    let mut plane_dims: Vec<(usize, usize)> = Vec::new();
    for c in &frame.components {
        let pw = mcus_x * n * c.h;
        let ph = mcus_y * n * c.v;
        planes.push(scratch.take(pw * ph));
        plane_dims.push((pw, ph));
    }
    for (ci, comp) in frame.components.iter().enumerate() {
        let (pw, _) = plane_dims[ci];
        let cblocks = &coeffs[ci];
        bk.par_chunks_mut(&mut planes[ci], pw * n, |brow, band| {
            let my = brow / comp.v;
            let by = brow % comp.v;
            for mx in 0..mcus_x {
                for bx in 0..comp.h {
                    let b = ((my * mcus_x + mx) * comp.v + by) * comp.h + bx;
                    let blk: &[f32; 64] = cblocks[b * 64..(b + 1) * 64].try_into().unwrap();
                    let ox = (mx * comp.h + bx) * n;
                    if n == 8 {
                        let spatial = idct(blk);
                        for y in 0..8 {
                            for x in 0..8 {
                                band[y * pw + ox + x] = spatial[y * 8 + x] + 128.0;
                            }
                        }
                    } else {
                        let mut spatial = [0f32; 16];
                        idct_scaled(blk, n, &mut spatial);
                        for y in 0..n {
                            for x in 0..n {
                                band[y * pw + ox + x] = spatial[y * n + x] + 128.0;
                            }
                        }
                    }
                }
            }
        });
    }
    for buf in coeffs {
        scratch.recycle(buf);
    }

    // Phase 3 (parallel): upsample + color-convert per pixel row. The
    // output dimensions shrink with the scale; the subsampling-ratio
    // index math is unchanged because every plane scaled uniformly.
    let out_w = scale.apply(frame.width);
    let out_h = scale.apply(frame.height);
    let image = assemble_image(frame, &planes, &plane_dims, max_h, max_v, bk, out_w, out_h);
    for buf in planes {
        scratch.recycle(buf);
    }
    image
}

fn decode_block(
    reader: &mut BitReader<'_>,
    dc: &HuffDecoder,
    ac: &HuffDecoder,
    quant: &[u16; 64],
    pred: &mut i32,
) -> Result<[f32; 64], DecodeJpegError> {
    let mut coeffs = [0f32; 64];
    // DC
    let cat = u32::from(dc.decode(reader)?);
    if cat > 11 {
        return Err(DecodeJpegError::Malformed("DC category out of range"));
    }
    let diff = extend(reader.bits(cat)?, cat);
    *pred += diff;
    coeffs[0] = *pred as f32 * f32::from(quant[0]);
    // AC
    let mut zz = 1usize;
    while zz < 64 {
        let rs = ac.decode(reader)?;
        let run = usize::from(rs >> 4);
        let cat = u32::from(rs & 0x0f);
        if cat == 0 {
            if run == 15 {
                zz += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        zz += run;
        if zz >= 64 {
            return Err(DecodeJpegError::Malformed("AC run exceeds block"));
        }
        let v = extend(reader.bits(cat)?, cat);
        let raster = ZIGZAG[zz];
        coeffs[raster] = v as f32 * f32::from(quant[raster]);
        zz += 1;
    }
    Ok(coeffs)
}

#[allow(clippy::too_many_arguments)]
fn assemble_image(
    frame: &Frame,
    planes: &[Vec<f32>],
    plane_dims: &[(usize, usize)],
    max_h: usize,
    max_v: usize,
    bk: &Backend,
    w: usize,
    h: usize,
) -> Result<Image, DecodeJpegError> {
    if frame.components.len() == 1 {
        let (pw, _) = plane_dims[0];
        let mut data = vec![0u8; w * h];
        bk.par_chunks_mut(&mut data, w, |y, row| {
            for (x, px) in row.iter_mut().enumerate() {
                *px = planes[0][y * pw + x].round().clamp(0.0, 255.0) as u8;
            }
        });
        return Image::from_raw(w, h, PixelFormat::Gray8, data)
            .map_err(|_| DecodeJpegError::Malformed("image assembly size mismatch"));
    }

    let simd = !vserve_simd::active_level().is_scalar();
    let mut data = vec![0u8; w * h * 3];
    bk.par_chunks_mut(&mut data, w * 3, |y, row| {
        if simd {
            // Strip-at-a-time: gather the (non-contiguous) upsample taps
            // for up to STRIP pixels into stack buffers, then hand the
            // whole strip to the SIMD color-convert kernel. Per-element
            // arithmetic matches the scalar loop below bit for bit.
            const STRIP: usize = 64;
            let mut comp_bufs = [[0f32; STRIP]; 3];
            let mut x0 = 0;
            while x0 < w {
                let len = STRIP.min(w - x0);
                for (ci, comp) in frame.components.iter().enumerate() {
                    let (pw, ph) = plane_dims[ci];
                    let sy = (y * comp.v / max_v).min(ph - 1);
                    let prow = &planes[ci][sy * pw..sy * pw + pw];
                    let buf = &mut comp_bufs[ci][..len];
                    if comp.h == max_h {
                        // Full-resolution plane: sx == x (pw ≥ w).
                        buf.copy_from_slice(&prow[x0..x0 + len]);
                    } else {
                        for (j, b) in buf.iter_mut().enumerate() {
                            let sx = ((x0 + j) * comp.h / max_h).min(pw - 1);
                            *b = prow[sx];
                        }
                    }
                }
                let [yb, cbb, crb] = &comp_bufs;
                vserve_simd::kernels::ycbcr_to_rgb_row(
                    &yb[..len],
                    &cbb[..len],
                    &crb[..len],
                    &mut row[x0 * 3..(x0 + len) * 3],
                );
                x0 += len;
            }
            return;
        }
        for x in 0..w {
            let mut ycc = [0f32; 3];
            for (ci, comp) in frame.components.iter().enumerate() {
                let (pw, ph) = plane_dims[ci];
                // Nearest-neighbour upsampling from the subsampled grid.
                let sx = (x * comp.h / max_h).min(pw - 1);
                let sy = (y * comp.v / max_v).min(ph - 1);
                ycc[ci] = planes[ci][sy * pw + sx];
            }
            let (yv, cb, cr) = (ycc[0], ycc[1] - 128.0, ycc[2] - 128.0);
            let r = yv + 1.402 * cr;
            let g = yv - 0.344_136 * cb - 0.714_136 * cr;
            let b = yv + 1.772 * cb;
            row[x * 3] = r.round().clamp(0.0, 255.0) as u8;
            row[x * 3 + 1] = g.round().clamp(0.0, 255.0) as u8;
            row[x * 3 + 2] = b.round().clamp(0.0, 255.0) as u8;
        }
    });
    Image::from_raw(w, h, PixelFormat::Rgb8, data)
        .map_err(|_| DecodeJpegError::Malformed("image assembly size mismatch"))
}
