//! The preprocessing fast path: JPEG → normalized NCHW tensor with
//! DCT-domain scaled decode and a fused resize/normalize kernel.
//!
//! This is the paper's highest-leverage optimization target: decode +
//! resize + normalize dominate end-to-end serving time for CPU-side
//! preprocessing. The fast path attacks all three at once:
//!
//! 1. [`probe_dimensions`](crate::probe_dimensions) reads the frame size
//!    from the SOF header (no pixel work).
//! 2. [`DecodeScale::for_target`](crate::DecodeScale::for_target) picks
//!    the largest 1/2ᵏ DCT-domain scale whose output still covers the
//!    target, so the IDCT, color buffer and chroma upsampling all shrink
//!    by the square of the factor while the residual resize factor stays
//!    in [1, 2).
//! 3. [`fused_preprocess_with`](vserve_tensor::ops::fused_preprocess_with)
//!    performs that residual resize with bilinear taps, writing the
//!    normalized f32 values straight into the destination tensor — no
//!    intermediate resized RGB image and no separate normalize pass.
//!
//! The output approximates the baseline decode → area/bilinear resize →
//! to-tensor → normalize chain (not bit-identical: the scaled IDCT is a
//! band-limited reconstruction and the fused kernel skips a u8
//! quantization), but it is itself fully deterministic: the same bytes
//! and target produce bit-identical tensors for any thread count.

use vserve_compute::{Backend, Scratch};
use vserve_tensor::{ops, Tensor};

use crate::decode::{decode_scaled_with, probe_dimensions, DecodeScale};
use crate::DecodeJpegError;

/// The plan the fast path chose for one payload: source dimensions from
/// the header probe, the DCT-domain scale, and the scaled decode output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocPlan {
    /// Source width from the SOF header.
    pub src_w: usize,
    /// Source height from the SOF header.
    pub src_h: usize,
    /// Chosen DCT-domain decode scale.
    pub scale: DecodeScale,
    /// Width of the scaled decode output.
    pub scaled_w: usize,
    /// Height of the scaled decode output.
    pub scaled_h: usize,
}

/// Probes the JPEG header and picks the decode scale for a `side × side`
/// target without doing any pixel work.
///
/// # Errors
///
/// Returns a [`DecodeJpegError`] if the header cannot be parsed.
pub fn plan(data: &[u8], side: usize) -> Result<PreprocPlan, DecodeJpegError> {
    let (src_w, src_h) = probe_dimensions(data)?;
    let scale = DecodeScale::for_target(src_w, src_h, side);
    Ok(PreprocPlan {
        src_w,
        src_h,
        scale,
        scaled_w: scale.apply(src_w),
        scaled_h: scale.apply(src_h),
    })
}

/// Decodes and preprocesses a JPEG payload into a normalized
/// `[1, c, side, side]` NCHW tensor via the scaled-decode fast path.
///
/// Single-threaded wrapper over [`preprocess_jpeg_with`].
///
/// # Errors
///
/// Returns a [`DecodeJpegError`] if the payload cannot be decoded.
pub fn preprocess_jpeg(data: &[u8], side: usize) -> Result<Tensor, DecodeJpegError> {
    crate::decode::with_local_scratch(|s| preprocess_jpeg_with(&Backend::serial(), s, data, side))
}

/// [`preprocess_jpeg`] with an explicit compute backend and scratch
/// arena. Decode temporaries come from `scratch`, so a worker calling
/// this frame after frame stops touching the allocator once warm.
///
/// # Errors
///
/// Returns a [`DecodeJpegError`] if the payload cannot be decoded.
pub fn preprocess_jpeg_with(
    bk: &Backend,
    scratch: &mut Scratch,
    data: &[u8],
    side: usize,
) -> Result<Tensor, DecodeJpegError> {
    let plan = plan(data, side)?;
    let img = decode_scaled_with(bk, scratch, data, plan.scale)?;
    Ok(ops::fused_preprocess_with(bk, &img, side))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, encode, EncodeOptions};
    use vserve_tensor::Image;

    fn jpeg(w: usize, h: usize) -> Vec<u8> {
        encode(&Image::gradient(w, h), &EncodeOptions::default())
    }

    #[test]
    fn plan_picks_largest_covering_scale() {
        let p = plan(&jpeg(448, 448), 224).expect("plan");
        assert_eq!((p.src_w, p.src_h), (448, 448));
        assert_eq!(p.scale, DecodeScale::Half);
        assert_eq!((p.scaled_w, p.scaled_h), (224, 224));

        let p = plan(&jpeg(1792, 1792), 224).expect("plan");
        assert_eq!(p.scale, DecodeScale::Eighth);

        // Source barely above target: no power-of-two scale covers it.
        let p = plan(&jpeg(300, 300), 224).expect("plan");
        assert_eq!(p.scale, DecodeScale::Full);

        // Non-square: the tighter dimension governs.
        let p = plan(&jpeg(1000, 500), 224).expect("plan");
        assert_eq!(p.scale, DecodeScale::Half);
    }

    #[test]
    fn fast_path_tensor_close_to_baseline_chain() {
        let data = jpeg(448, 336);
        let fast = preprocess_jpeg(&data, 160).expect("fast path");
        let img = decode(&data).expect("decode");
        let base = vserve_tensor::ops::standard_preprocess(&img, 160);
        assert_eq!(fast.shape(), base.shape());
        // Smooth gradient: band-limited reconstruction is near-exact.
        let mut worst = 0f32;
        for (a, b) in fast.as_slice().iter().zip(base.as_slice()) {
            worst = worst.max((a - b).abs());
        }
        assert!(worst < 0.15, "worst normalized-unit error {worst}");
    }

    #[test]
    fn fast_path_bit_identical_across_threads() {
        let data = jpeg(450, 340); // odd scaled dims exercise edge blocks
        let want = preprocess_jpeg(&data, 224).expect("serial");
        for threads in [2, 4] {
            let bk = Backend::new(threads);
            let mut scratch = Scratch::new();
            let got = preprocess_jpeg_with(&bk, &mut scratch, &data, 224).expect("parallel");
            assert_eq!(want.as_slice(), got.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn fast_path_reports_decode_errors() {
        assert!(preprocess_jpeg(&[0, 1, 2, 3], 224).is_err());
    }
}
