//! Baseline sequential JPEG encoder (SOI/JFIF/DQT/SOF0/DHT/SOS/EOI).

use vserve_tensor::{Image, PixelFormat};

use crate::bits::BitWriter;
use crate::dct::fdct;
use crate::huffman::{amplitude_bits, category, HuffEncoder};
use crate::tables::{
    scale_quant_table, AC_CHROMA, AC_LUMA, BASE_CHROMA_QUANT, BASE_LUMA_QUANT, DC_CHROMA, DC_LUMA,
    ZIGZAG,
};
use crate::{EncodeOptions, Subsampling};

/// A planar, possibly subsampled component.
struct Plane {
    w: usize,
    h: usize,
    data: Vec<f32>,
}

impl Plane {
    fn sample_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.w as isize - 1) as usize;
        let y = y.clamp(0, self.h as isize - 1) as usize;
        self.data[y * self.w + x]
    }

    /// Extracts the 8×8 block whose top-left pixel is `(bx·8, by·8)`,
    /// replicating edge pixels, and level-shifts by −128.
    fn block(&self, bx: usize, by: usize) -> [f32; 64] {
        let mut out = [0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                out[y * 8 + x] =
                    self.sample_clamped((bx * 8 + x) as isize, (by * 8 + y) as isize) - 128.0;
            }
        }
        out
    }
}

fn rgb_to_ycbcr_planes(img: &Image) -> [Plane; 3] {
    let (w, h) = (img.width(), img.height());
    let mut y = vec![0f32; w * h];
    let mut cb = vec![0f32; w * h];
    let mut cr = vec![0f32; w * h];
    for py in 0..h {
        for px in 0..w {
            let [r, g, b] = img.pixel(px, py);
            let (r, g, b) = (f32::from(r), f32::from(g), f32::from(b));
            let i = py * w + px;
            y[i] = 0.299 * r + 0.587 * g + 0.114 * b;
            cb[i] = -0.168_736 * r - 0.331_264 * g + 0.5 * b + 128.0;
            cr[i] = 0.5 * r - 0.418_688 * g - 0.081_312 * b + 128.0;
        }
    }
    [
        Plane { w, h, data: y },
        Plane { w, h, data: cb },
        Plane { w, h, data: cr },
    ]
}

/// 2×2 box downsampling (the 4:2:0 chroma path).
fn downsample2(p: &Plane) -> Plane {
    let w = p.w.div_ceil(2);
    let h = p.h.div_ceil(2);
    let mut data = vec![0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for dy in 0..2 {
                for dx in 0..2 {
                    acc += p.sample_clamped((2 * x + dx) as isize, (2 * y + dy) as isize);
                }
            }
            data[y * w + x] = acc / 4.0;
        }
    }
    Plane { w, h, data }
}

/// Quantizes an FDCT block into zigzag-ordered integer coefficients.
fn quantize(freq: &[f32; 64], qtable: &[u16; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (zz, &raster) in ZIGZAG.iter().enumerate() {
        out[zz] = (freq[raster] / f32::from(qtable[raster])).round() as i32;
    }
    out
}

/// Per-component entropy-coding state.
struct CompCoder<'a> {
    dc: &'a HuffEncoder,
    ac: &'a HuffEncoder,
    qtable: &'a [u16; 64],
    pred: i32,
}

impl CompCoder<'_> {
    fn encode_block(&mut self, w: &mut BitWriter, plane: &Plane, bx: usize, by: usize) {
        let freq = fdct(&plane.block(bx, by));
        let zz = quantize(&freq, self.qtable);

        let diff = zz[0] - self.pred;
        self.pred = zz[0];
        let cat = category(diff);
        self.dc.encode(w, cat as u8);
        w.put(amplitude_bits(diff, cat), cat);

        let mut run = 0u32;
        let last_nonzero = (1..64).rev().find(|&i| zz[i] != 0);
        let end = last_nonzero.map_or(0, |i| i + 1);
        for &coeff in zz.iter().take(end).skip(1) {
            if coeff == 0 {
                run += 1;
            } else {
                while run > 15 {
                    self.ac.encode(w, 0xf0); // ZRL
                    run -= 16;
                }
                let cat = category(coeff);
                self.ac.encode(w, ((run << 4) | cat) as u8);
                w.put(amplitude_bits(coeff, cat), cat);
                run = 0;
            }
        }
        if end < 64 {
            self.ac.encode(w, 0x00); // EOB
        }
    }
}

fn push_marker(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.push(0xff);
    out.push(marker);
    let len = payload.len() + 2;
    out.push((len >> 8) as u8);
    out.push((len & 0xff) as u8);
    out.extend_from_slice(payload);
}

/// Encodes an image as a baseline JFIF JPEG.
///
/// Gray images are written as single-component JPEGs; the subsampling
/// option only affects RGB input.
pub fn encode(img: &Image, opts: &EncodeOptions) -> Vec<u8> {
    let luma_q = scale_quant_table(&BASE_LUMA_QUANT, opts.quality);
    let chroma_q = scale_quant_table(&BASE_CHROMA_QUANT, opts.quality);

    let gray = img.format() == PixelFormat::Gray8;
    let (planes, samplings): (Vec<Plane>, Vec<(u8, u8)>) = if gray {
        let p = Plane {
            w: img.width(),
            h: img.height(),
            data: img.as_bytes().iter().map(|&b| f32::from(b)).collect(),
        };
        (vec![p], vec![(1, 1)])
    } else {
        let [y, cb, cr] = rgb_to_ycbcr_planes(img);
        match opts.subsampling {
            Subsampling::S444 => (vec![y, cb, cr], vec![(1, 1), (1, 1), (1, 1)]),
            Subsampling::S420 => {
                let cb = downsample2(&cb);
                let cr = downsample2(&cr);
                (vec![y, cb, cr], vec![(2, 2), (1, 1), (1, 1)])
            }
        }
    };

    let mut out = Vec::new();
    out.extend_from_slice(&[0xff, 0xd8]); // SOI

    // APP0 / JFIF
    push_marker(
        &mut out,
        0xe0,
        &[
            b'J', b'F', b'I', b'F', 0, // identifier
            1, 1, // version 1.1
            0, // aspect-ratio units
            0, 1, 0, 1, // density 1×1
            0, 0, // no thumbnail
        ],
    );

    // DQT: both tables in one segment, zigzag order, 8-bit precision.
    {
        let mut payload = Vec::with_capacity(130);
        payload.push(0x00); // Pq=0, Tq=0
        payload.extend(ZIGZAG.iter().map(|&i| luma_q[i] as u8));
        if !gray {
            payload.push(0x01); // Pq=0, Tq=1
            payload.extend(ZIGZAG.iter().map(|&i| chroma_q[i] as u8));
        }
        push_marker(&mut out, 0xdb, &payload);
    }

    // SOF0 (baseline).
    {
        let mut payload = vec![
            8, // precision
            (img.height() >> 8) as u8,
            (img.height() & 0xff) as u8,
            (img.width() >> 8) as u8,
            (img.width() & 0xff) as u8,
            planes.len() as u8,
        ];
        for (i, &(sh, sv)) in samplings.iter().enumerate() {
            payload.push(i as u8 + 1); // component id
            payload.push((sh << 4) | sv);
            payload.push(u8::from(i > 0)); // quant table id
        }
        push_marker(&mut out, 0xc0, &payload);
    }

    // DHT: all four standard tables (two for gray).
    {
        let mut payload = Vec::new();
        for (class_id, spec) in [
            (0x00u8, &DC_LUMA),
            (0x10u8, &AC_LUMA),
            (0x01u8, &DC_CHROMA),
            (0x11u8, &AC_CHROMA),
        ] {
            if gray && (class_id & 0x0f) == 1 {
                continue;
            }
            payload.push(class_id);
            payload.extend_from_slice(&spec.bits);
            payload.extend_from_slice(spec.values);
        }
        push_marker(&mut out, 0xc4, &payload);
    }

    // DRI (optional restart interval).
    if let Some(dri) = opts.restart_interval {
        if dri > 0 {
            push_marker(&mut out, 0xdd, &dri.to_be_bytes());
        }
    }

    // SOS.
    {
        let mut payload = vec![planes.len() as u8];
        for i in 0..planes.len() {
            payload.push(i as u8 + 1);
            payload.push(if i == 0 { 0x00 } else { 0x11 });
        }
        payload.extend_from_slice(&[0, 63, 0]); // full spectral band, no approx
        push_marker(&mut out, 0xda, &payload);
    }

    // Entropy-coded segment.
    let dc_luma = HuffEncoder::from_spec(&DC_LUMA);
    let ac_luma = HuffEncoder::from_spec(&AC_LUMA);
    let dc_chroma = HuffEncoder::from_spec(&DC_CHROMA);
    let ac_chroma = HuffEncoder::from_spec(&AC_CHROMA);

    let mut coders: Vec<CompCoder<'_>> = (0..planes.len())
        .map(|i| CompCoder {
            dc: if i == 0 { &dc_luma } else { &dc_chroma },
            ac: if i == 0 { &ac_luma } else { &ac_chroma },
            qtable: if i == 0 { &luma_q } else { &chroma_q },
            pred: 0,
        })
        .collect();

    let max_h = samplings.iter().map(|&(h, _)| h).max().unwrap() as usize;
    let max_v = samplings.iter().map(|&(_, v)| v).max().unwrap() as usize;
    let mcus_x = img.width().div_ceil(8 * max_h);
    let mcus_y = img.height().div_ceil(8 * max_v);

    let mut w = BitWriter::new();
    let dri = opts.restart_interval.unwrap_or(0) as usize;
    let mut mcus_since_restart = 0usize;
    let mut rst_index = 0u8;
    for my in 0..mcus_y {
        for mx in 0..mcus_x {
            if dri > 0 && mcus_since_restart == dri {
                // Byte-align, emit RSTn, reset DC prediction (T.81 E.1.4).
                w.pad_to_byte();
                w.put_marker(0xd0 + rst_index);
                rst_index = (rst_index + 1) % 8;
                for coder in &mut coders {
                    coder.pred = 0;
                }
                mcus_since_restart = 0;
            }
            mcus_since_restart += 1;
            for (ci, plane) in planes.iter().enumerate() {
                let (sh, sv) = (samplings[ci].0 as usize, samplings[ci].1 as usize);
                for by in 0..sv {
                    for bx in 0..sh {
                        coders[ci].encode_block(&mut w, plane, mx * sh + bx, my * sv + by);
                    }
                }
            }
        }
    }
    out.extend_from_slice(&w.finish());
    out.extend_from_slice(&[0xff, 0xd9]); // EOI
    out
}
