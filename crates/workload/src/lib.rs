//! Workload generation: arrivals, image-size mixes, faces per frame.
//!
//! The paper's experiments drive the server with (a) closed-loop clients
//! at fixed concurrency (Fig 5), (b) fixed representative image sizes
//! (Figs 6–9), and (c) a face pipeline where each frame yields a variable
//! number of faces (Fig 11). This crate provides those generators, all
//! drawing from deterministic [`RngStream`]s:
//!
//! * [`Arrivals`] — open arrival processes (Poisson, deterministic,
//!   bursty on/off); closed-loop drive lives in `vserve-server`.
//! * [`ImageMix`] — samplers over [`ImageSpec`]s: fixed, weighted mixes of
//!   the paper's sizes, and an ImageNet-like lognormal mixture.
//! * [`FacesPerFrame`] — per-frame face-count distributions for the
//!   multi-DNN pipeline.
//! * [`synthetic_jpeg`] — a *real* JPEG payload of approximately the
//!   requested spec, for live-mode runs that decode actual bytes.
//!
//! # Examples
//!
//! ```
//! use vserve_sim::rng::RngStream;
//! use vserve_workload::ImageMix;
//!
//! let mut rng = RngStream::derive(7, "sizes");
//! let mix = ImageMix::imagenet_like();
//! let img = mix.sample(&mut rng);
//! assert!(img.pixels() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vserve_codec::{encode, EncodeOptions};
use vserve_device::ImageSpec;
use vserve_sim::rng::RngStream;
use vserve_tensor::Image;

/// Open-loop arrival processes.
///
/// # Examples
///
/// ```
/// use vserve_sim::rng::RngStream;
/// use vserve_workload::Arrivals;
///
/// let mut rng = RngStream::derive(1, "arrivals");
/// let mut poisson = Arrivals::poisson(100.0);
/// let gap = poisson.next_gap(&mut rng);
/// assert!(gap > 0.0);
/// ```
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Poisson process with the given rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
    },
    /// Deterministic arrivals at a fixed rate.
    Deterministic {
        /// Arrival rate, requests per second.
        rate: f64,
    },
    /// Two-state on/off burst process: alternates between a burst rate
    /// and an idle rate with exponentially distributed dwell times.
    Bursty {
        /// Rate during bursts, requests per second.
        burst_rate: f64,
        /// Rate between bursts, requests per second.
        idle_rate: f64,
        /// Mean dwell time in each state, seconds.
        mean_dwell: f64,
        /// Whether currently in the burst state.
        bursting: bool,
        /// Virtual time remaining in the current state, seconds.
        dwell_left: f64,
    },
}

impl Arrivals {
    /// Creates a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Arrivals::Poisson { rate }
    }

    /// Creates a deterministic process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn deterministic(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Arrivals::Deterministic { rate }
    }

    /// Creates a bursty on/off process.
    ///
    /// # Panics
    ///
    /// Panics if any rate or the dwell time is not positive.
    pub fn bursty(burst_rate: f64, idle_rate: f64, mean_dwell: f64) -> Self {
        assert!(
            burst_rate > 0.0 && idle_rate > 0.0,
            "rates must be positive"
        );
        assert!(mean_dwell > 0.0, "dwell time must be positive");
        Arrivals::Bursty {
            burst_rate,
            idle_rate,
            mean_dwell,
            bursting: true,
            dwell_left: mean_dwell,
        }
    }

    /// Draws the gap to the next arrival, in seconds.
    pub fn next_gap(&mut self, rng: &mut RngStream) -> f64 {
        match self {
            Arrivals::Poisson { rate } => rng.exp(*rate),
            Arrivals::Deterministic { rate } => 1.0 / *rate,
            Arrivals::Bursty {
                burst_rate,
                idle_rate,
                mean_dwell,
                bursting,
                dwell_left,
            } => {
                let rate = if *bursting { *burst_rate } else { *idle_rate };
                let mut gap = rng.exp(rate);
                while gap > *dwell_left {
                    // Cross into the other state; re-draw the remainder at
                    // the new rate (memorylessness makes this exact).
                    let consumed = *dwell_left;
                    *bursting = !*bursting;
                    *dwell_left = rng.exp(1.0 / *mean_dwell);
                    let new_rate = if *bursting { *burst_rate } else { *idle_rate };
                    gap = consumed + rng.exp(new_rate);
                }
                *dwell_left -= gap;
                gap
            }
        }
    }

    /// Long-run mean arrival rate, requests/second.
    pub fn mean_rate(&self) -> f64 {
        match self {
            Arrivals::Poisson { rate } | Arrivals::Deterministic { rate } => *rate,
            Arrivals::Bursty {
                burst_rate,
                idle_rate,
                ..
            } => (burst_rate + idle_rate) / 2.0,
        }
    }
}

/// A distribution over request image sizes.
///
/// # Examples
///
/// ```
/// use vserve_device::ImageSpec;
/// use vserve_sim::rng::RngStream;
/// use vserve_workload::ImageMix;
///
/// let mut rng = RngStream::derive(3, "mix");
/// let mix = ImageMix::fixed(ImageSpec::medium());
/// assert_eq!(mix.sample(&mut rng), ImageSpec::medium());
/// ```
#[derive(Debug, Clone)]
pub enum ImageMix {
    /// Every request carries the same image.
    Fixed(ImageSpec),
    /// Weighted choice among a fixed set.
    Weighted(Vec<(ImageSpec, f64)>),
    /// ImageNet-like: lognormal pixel count (median ≈ 500×375), aspect
    /// ratio jitter, compressed size ≈ 0.65 B/px.
    ImageNetLike,
}

impl ImageMix {
    /// Every request carries `img`.
    pub fn fixed(img: ImageSpec) -> Self {
        ImageMix::Fixed(img)
    }

    /// The paper's three sizes with a realistic skew: mostly medium, some
    /// small, occasional large uploads.
    pub fn paper_sizes() -> Self {
        ImageMix::Weighted(vec![
            (ImageSpec::small(), 0.15),
            (ImageSpec::medium(), 0.83),
            (ImageSpec::large(), 0.02),
        ])
    }

    /// An ImageNet-like continuous size distribution.
    pub fn imagenet_like() -> Self {
        ImageMix::ImageNetLike
    }

    /// Draws one image spec.
    pub fn sample(&self, rng: &mut RngStream) -> ImageSpec {
        match self {
            ImageMix::Fixed(img) => *img,
            ImageMix::Weighted(items) => {
                let weights: Vec<f64> = items.iter().map(|(_, w)| *w).collect();
                items[rng.weighted_index(&weights)].0
            }
            ImageMix::ImageNetLike => {
                // Median ImageNet image is ≈ 500×375 ≈ 187 kpx; pixel
                // counts are roughly lognormal with σ ≈ 0.5.
                let pixels = rng.log_normal(187_500f64.ln(), 0.5).clamp(1_000.0, 4.0e7);
                let aspect = rng.uniform(0.6, 1.7);
                let width = (pixels * aspect).sqrt().round().max(16.0) as usize;
                let height = (pixels / aspect).sqrt().round().max(16.0) as usize;
                let bytes_per_px = rng.uniform(0.4, 0.9);
                let bytes = ((width * height) as f64 * bytes_per_px).round().max(512.0) as usize;
                ImageSpec::new(width, height, bytes)
            }
        }
    }
}

/// Distribution of detected faces per frame for the multi-DNN pipeline
/// (§4.7): one detection output fans out into `k` identification calls.
///
/// # Examples
///
/// ```
/// use vserve_sim::rng::RngStream;
/// use vserve_workload::FacesPerFrame;
///
/// let mut rng = RngStream::derive(5, "faces");
/// assert_eq!(FacesPerFrame::fixed(9).sample(&mut rng), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FacesPerFrame {
    /// Every frame contains exactly `k` faces.
    Fixed(u64),
    /// Poisson-distributed count with the given mean (frames with zero
    /// faces still traverse the detector).
    Poisson(f64),
}

impl FacesPerFrame {
    /// Every frame contains exactly `k` faces.
    pub fn fixed(k: u64) -> Self {
        FacesPerFrame::Fixed(k)
    }

    /// Poisson-distributed face counts with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be non-negative");
        FacesPerFrame::Poisson(mean)
    }

    /// Draws the face count for one frame.
    pub fn sample(&self, rng: &mut RngStream) -> u64 {
        match *self {
            FacesPerFrame::Fixed(k) => k,
            FacesPerFrame::Poisson(mean) => rng.poisson(mean),
        }
    }

    /// Mean faces per frame.
    pub fn mean(&self) -> f64 {
        match *self {
            FacesPerFrame::Fixed(k) => k as f64,
            FacesPerFrame::Poisson(mean) => mean,
        }
    }
}

/// Generates a real JPEG whose dimensions match `spec`, for live-mode
/// runs that exercise the actual codec. The compressed size will differ
/// from `spec.compressed_bytes` (it depends on content); the returned
/// bytes are a valid JPEG of the right resolution.
///
/// # Examples
///
/// ```
/// use vserve_device::ImageSpec;
/// use vserve_workload::synthetic_jpeg;
///
/// let jpeg = synthetic_jpeg(&ImageSpec::new(64, 48, 0), 42);
/// let img = vserve_codec::decode(&jpeg)?;
/// assert_eq!((img.width(), img.height()), (64, 48));
/// # Ok::<(), vserve_codec::DecodeJpegError>(())
/// ```
pub fn synthetic_jpeg(spec: &ImageSpec, seed: u64) -> Vec<u8> {
    let mut img = Image::gradient(spec.width, spec.height);
    let noise = Image::noise(spec.width, spec.height, seed);
    // Blend in noise so entropy (and thus compressed size) is realistic.
    let bytes = img.as_bytes_mut();
    for (b, n) in bytes.iter_mut().zip(noise.as_bytes()) {
        *b = ((u16::from(*b) * 3 + u16::from(*n)) / 4) as u8;
    }
    encode(&img, &EncodeOptions::default())
}

/// A synthetic video stream: consecutive frames arrive in *scenes*.
/// Within a scene every frame is **bit-identical** (a static camera
/// between cuts), so a content-addressed preprocessing cache hits on
/// every frame after the scene's first; a cut starts a new scene with
/// fresh content. Over `n` frames with scene length `hold`, the expected
/// hit rate is `(n - ceil(n / hold)) / n` — e.g. 60 frames at `hold = 8`
/// give 52/60 ≈ 0.87.
///
/// Frames are pure functions of `(seed, index)`: two streams with the
/// same parameters produce the same bytes, and [`frame`](Self::frame)
/// can be replayed at random offsets (the sim and the live server see
/// identical payloads).
///
/// # Examples
///
/// ```
/// use vserve_device::ImageSpec;
/// use vserve_workload::VideoStream;
///
/// let mut v = VideoStream::new(ImageSpec::new(64, 48, 0), 7, 8);
/// let a = v.next_frame();
/// let b = v.next_frame();
/// assert_eq!(a, b, "same scene: bit-identical frames");
/// assert!(VideoStream::new(ImageSpec::new(64, 48, 0), 7, 8).expected_hit_rate(60) > 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct VideoStream {
    spec: ImageSpec,
    seed: u64,
    hold: usize,
    next: usize,
}

impl VideoStream {
    /// A stream of `spec`-sized frames where each scene holds `hold`
    /// identical frames (`hold` is clamped to at least 1).
    pub fn new(spec: ImageSpec, seed: u64, hold: usize) -> VideoStream {
        VideoStream {
            spec,
            seed,
            hold: hold.max(1),
            next: 0,
        }
    }

    /// Frames per scene.
    pub fn hold(&self) -> usize {
        self.hold
    }

    /// The scene index frame `i` belongs to.
    pub fn scene_of(&self, i: usize) -> usize {
        i / self.hold
    }

    /// The JPEG bytes of frame `i` — bit-identical for every frame of
    /// one scene, fresh content after each cut.
    pub fn frame(&self, i: usize) -> Vec<u8> {
        let scene = self.scene_of(i) as u64;
        // Scene 0 of seed s must differ from scene 0 of seed s+1, and
        // scenes within a stream must differ from each other: mix both
        // through an odd multiplicative constant.
        let frame_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(scene.wrapping_mul(0xD1B5_4A32_D192_ED03));
        synthetic_jpeg(&self.spec, frame_seed)
    }

    /// The next frame in arrival order.
    pub fn next_frame(&mut self) -> Vec<u8> {
        let f = self.frame(self.next);
        self.next += 1;
        f
    }

    /// Expected content-cache hit rate over the first `n` frames: every
    /// frame except each scene's first is a repeat.
    pub fn expected_hit_rate(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let scenes = n.div_ceil(self.hold);
        (n - scenes) as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(99, "test")
    }

    #[test]
    fn poisson_arrival_rate_close() {
        let mut a = Arrivals::poisson(200.0);
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| a.next_gap(&mut r)).sum();
        let rate = n as f64 / total;
        assert!((rate - 200.0).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn deterministic_gaps_constant() {
        let mut a = Arrivals::deterministic(50.0);
        let mut r = rng();
        assert_eq!(a.next_gap(&mut r), 0.02);
        assert_eq!(a.next_gap(&mut r), 0.02);
    }

    #[test]
    fn bursty_mean_rate_between_extremes() {
        let mut a = Arrivals::bursty(1000.0, 10.0, 0.1);
        let mut r = rng();
        let n = 50_000;
        let total: f64 = (0..n).map(|_| a.next_gap(&mut r)).sum();
        let rate = n as f64 / total;
        assert!(rate > 15.0 && rate < 900.0, "rate {rate}");
    }

    #[test]
    fn weighted_mix_never_yields_unlisted() {
        let mix = ImageMix::paper_sizes();
        let mut r = rng();
        for _ in 0..1000 {
            let s = mix.sample(&mut r);
            assert!(s == ImageSpec::small() || s == ImageSpec::medium() || s == ImageSpec::large());
        }
    }

    #[test]
    fn imagenet_like_median_near_medium() {
        let mix = ImageMix::imagenet_like();
        let mut r = rng();
        let mut px: Vec<f64> = (0..4000)
            .map(|_| mix.sample(&mut r).pixels() as f64)
            .collect();
        px.sort_by(|a, b| a.total_cmp(b));
        let median = px[px.len() / 2];
        assert!(
            (median - 187_500.0).abs() < 60_000.0,
            "median pixels {median}"
        );
    }

    #[test]
    fn faces_distributions() {
        let mut r = rng();
        assert_eq!(FacesPerFrame::fixed(3).sample(&mut r), 3);
        let p = FacesPerFrame::poisson(4.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
        assert_eq!(p.mean(), 4.0);
    }

    #[test]
    fn synthetic_jpeg_round_trips() {
        let spec = ImageSpec::new(80, 60, 0);
        let jpeg = synthetic_jpeg(&spec, 7);
        let img = vserve_codec::decode(&jpeg).unwrap();
        assert_eq!((img.width(), img.height()), (80, 60));
        // Not trivially compressible: at least 0.05 B/px.
        assert!(jpeg.len() > 80 * 60 / 20);
    }

    #[test]
    fn synthetic_jpeg_deterministic() {
        let spec = ImageSpec::new(32, 32, 0);
        assert_eq!(synthetic_jpeg(&spec, 1), synthetic_jpeg(&spec, 1));
        assert_ne!(synthetic_jpeg(&spec, 1), synthetic_jpeg(&spec, 2));
    }

    #[test]
    fn video_scenes_hold_bit_identical_frames() {
        let v = VideoStream::new(ImageSpec::new(48, 48, 0), 5, 4);
        for scene in 0..3 {
            let first = v.frame(scene * 4);
            for i in 1..4 {
                assert_eq!(v.frame(scene * 4 + i), first, "scene {scene} frame {i}");
            }
        }
        // Cuts change content, and scene indices line up with hold.
        assert_ne!(v.frame(3), v.frame(4));
        assert_eq!(v.scene_of(3), 0);
        assert_eq!(v.scene_of(4), 1);
    }

    #[test]
    fn video_streams_replay_and_differ_by_seed() {
        let spec = ImageSpec::new(48, 48, 0);
        let mut a = VideoStream::new(spec, 9, 8);
        let mut b = VideoStream::new(spec, 9, 8);
        for _ in 0..10 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        let c = VideoStream::new(spec, 10, 8);
        assert_ne!(a.frame(0), c.frame(0), "different seeds, different scenes");
    }

    #[test]
    fn video_expected_hit_rate_matches_scene_count() {
        let v = VideoStream::new(ImageSpec::new(48, 48, 0), 1, 8);
        // 60 frames at hold 8 → 8 scenes → 52 repeats.
        assert!((v.expected_hit_rate(60) - 52.0 / 60.0).abs() < 1e-12);
        assert!(v.expected_hit_rate(60) >= 0.8);
        assert_eq!(v.expected_hit_rate(0), 0.0);
        // hold 1: every frame is a cut, nothing repeats.
        let cutty = VideoStream::new(ImageSpec::new(48, 48, 0), 1, 1);
        assert_eq!(cutty.expected_hit_rate(60), 0.0);
    }
}
