//! Shared compute backend for the vserve hot paths.
//!
//! The paper's thesis is that non-inference stages (JPEG decode, resize,
//! normalize, batching) dominate server time — but demonstrating that on
//! real compute requires the kernels themselves to be respectable. This
//! crate provides the two pieces every hot loop in the workspace shares:
//!
//! * [`Backend`] — a dependency-free scoped worker pool built on
//!   [`std::thread::scope`]. Work is split into *chunks of a caller-chosen
//!   size* over a `&mut [T]`, and each worker receives a contiguous band
//!   of chunks, so output regions are disjoint and the per-element
//!   arithmetic order never depends on the thread count: results are
//!   **bit-identical** for `Backend::new(1)` and `Backend::new(n)`.
//! * [`Scratch`] — a buffer arena that recycles large `f32` temporaries
//!   (im2col matrices, GEMM packing panels, attention score buffers)
//!   across calls, so steady-state forward passes stop allocating.
//!
//! The crate is intentionally `std`-only: the build environment for this
//! workspace cannot assume a crates.io mirror, so no rayon/crossbeam here.
//!
//! # Examples
//!
//! ```
//! use vserve_compute::Backend;
//!
//! let bk = Backend::new(4);
//! let mut data = vec![0u64; 1 << 16];
//! bk.par_chunks_mut(&mut data, 4096, |chunk_idx, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_idx * 4096 + i) as u64;
//!     }
//! });
//! assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod scratch;

pub use pool::{Backend, BackendStats};
pub use scratch::Scratch;
