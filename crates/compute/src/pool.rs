//! Scoped worker pool with deterministic work partitioning.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable read by [`Backend::from_env`] for the default
/// thread count.
pub const THREADS_ENV: &str = "VSERVE_THREADS";

/// Below this many elements a parallel region runs inline regardless of
/// thread count: thread spawn latency (~tens of µs) would dominate.
const MIN_PAR_ELEMS: usize = 4096;

#[derive(Default)]
struct StatsCells {
    regions: AtomicU64,
    wall_nanos: AtomicU64,
    busy_nanos: AtomicU64,
}

/// Cumulative accounting for a [`Backend`], from [`Backend::stats`].
///
/// `busy` sums the time workers spent inside region bodies; `wall` sums
/// the elapsed time of each region. On an ideal `t`-thread run,
/// `busy ≈ wall × t`, so [`efficiency`](Self::efficiency) reports how much
/// of the pool's theoretical capacity the partitioning actually used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendStats {
    /// Worker threads the backend was configured with.
    pub threads: usize,
    /// Parallel regions executed (inline fast paths included).
    pub regions: u64,
    /// Sum of per-region elapsed wall time.
    pub wall: Duration,
    /// Sum of per-worker time spent executing region bodies.
    pub busy: Duration,
}

impl BackendStats {
    /// Mean parallel efficiency: `busy / (wall × threads)`, in `[0, 1]`
    /// for well-behaved loads. Returns 1.0 before any region has run.
    pub fn efficiency(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.threads as f64;
        if denom <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / denom
        }
    }
}

/// A scoped worker pool: splits mutable slices into disjoint chunk bands
/// and runs one band per worker via [`std::thread::scope`].
///
/// Cloning a `Backend` yields a handle to the same statistics counters
/// *and* the same thread-count cell, so one backend can be shared across
/// server stages, report a single efficiency figure, and be repartitioned
/// at runtime from any handle ([`Backend::set_threads`]).
///
/// # Determinism
///
/// Work is partitioned *statically*: chunk `i` always covers the same
/// elements and is always passed the same index, and workers never share
/// output elements. Because no arithmetic is reordered across chunk
/// boundaries, every computation built on `par_chunks_mut` produces
/// bit-identical results for any thread count — the property the
/// calibrated paper-shape tests rely on.
#[derive(Clone)]
pub struct Backend {
    threads: Arc<AtomicUsize>,
    stats: Arc<StatsCells>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::serial()
    }
}

impl Backend {
    /// A backend with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Backend {
            threads: Arc::new(AtomicUsize::new(threads.max(1))),
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// A single-threaded backend: every region runs inline on the caller.
    pub fn serial() -> Self {
        Backend::new(1)
    }

    /// Thread count from the `VSERVE_THREADS` environment variable,
    /// falling back to [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Backend::new(threads)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Repartitions the pool at runtime (clamped to ≥ 1). The new count
    /// applies from the next parallel region on every handle sharing this
    /// backend; in-flight regions finish with the count they loaded at
    /// entry. Because partitioning is static in chunk units, results stay
    /// bit-identical across any sequence of resizes.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// Snapshot of cumulative region accounting.
    pub fn stats(&self) -> BackendStats {
        BackendStats {
            threads: self.threads(),
            regions: self.stats.regions.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.stats.wall_nanos.load(Ordering::Relaxed)),
            busy: Duration::from_nanos(self.stats.busy_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Splits `data` into consecutive `chunk`-element chunks (the final
    /// chunk may be shorter) and calls `f(chunk_index, chunk)` for each,
    /// distributing contiguous *bands* of chunks across the pool.
    ///
    /// Runs inline when the backend is single-threaded, when there are
    /// fewer than two chunks, or when the slice is small enough that
    /// spawn latency would dominate.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`. Panics from `f` propagate to the caller
    /// (the scope joins all workers first).
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be non-zero");
        let n_chunks = data.len().div_ceil(chunk);
        // One load per region: a concurrent resize never changes the
        // partitioning of a region already in flight.
        let threads = self.threads();
        let t0 = Instant::now();
        if threads == 1 || n_chunks < 2 || data.len() < MIN_PAR_ELEMS {
            for (i, c) in data.chunks_mut(chunk).enumerate() {
                f(i, c);
            }
            let dt = t0.elapsed().as_nanos() as u64;
            self.stats.regions.fetch_add(1, Ordering::Relaxed);
            self.stats.wall_nanos.fetch_add(dt, Ordering::Relaxed);
            self.stats.busy_nanos.fetch_add(dt, Ordering::Relaxed);
            return;
        }
        let workers = threads.min(n_chunks);
        let stats = &self.stats;
        let f = &f;
        std::thread::scope(|s| {
            let mut rest = data;
            let mut first_chunk = 0usize;
            for w in 0..workers {
                // Even split in chunk units; the last band absorbs the
                // ragged tail in element units.
                let last_chunk = ((w + 1) * n_chunks) / workers;
                let elems = ((last_chunk - first_chunk) * chunk).min(rest.len());
                let (band, tail) = rest.split_at_mut(elems);
                rest = tail;
                let base = first_chunk;
                first_chunk = last_chunk;
                s.spawn(move || {
                    let w0 = Instant::now();
                    for (i, c) in band.chunks_mut(chunk).enumerate() {
                        f(base + i, c);
                    }
                    stats
                        .busy_nanos
                        .fetch_add(w0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        });
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.regions.fetch_add(1, Ordering::Relaxed);
        self.stats.wall_nanos.fetch_add(dt, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(Backend::new(0).threads(), 1);
        assert_eq!(Backend::serial().threads(), 1);
        assert_eq!(Backend::new(7).threads(), 7);
    }

    #[test]
    fn every_chunk_visited_exactly_once() {
        // Large enough to cross MIN_PAR_ELEMS, ragged final chunk.
        for threads in [1, 2, 3, 8] {
            let bk = Backend::new(threads);
            let mut data = vec![0u32; 10_007];
            bk.par_chunks_mut(&mut data, 301, |ci, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + ci as u32;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (i / 301) as u32, "element {i}");
            }
        }
    }

    #[test]
    fn chunk_indices_are_global() {
        let bk = Backend::new(4);
        let mut data = vec![0usize; 64 * 256];
        bk.par_chunks_mut(&mut data, 256, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 256);
        }
    }

    #[test]
    fn small_and_empty_inputs_run_inline() {
        let bk = Backend::new(8);
        let mut none: Vec<u8> = Vec::new();
        bk.par_chunks_mut(&mut none, 16, |_, _| panic!("no chunks expected"));
        let mut tiny = vec![0u8; 10];
        bk.par_chunks_mut(&mut tiny, 3, |_, c| c.fill(9));
        assert!(tiny.iter().all(|&v| v == 9));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            let bk = Backend::new(threads);
            let mut data = vec![0f32; 50_000];
            bk.par_chunks_mut(&mut data, 777, |ci, chunk| {
                let mut acc = ci as f32 * 0.1;
                for (i, v) in chunk.iter_mut().enumerate() {
                    acc = acc * 0.999 + (i as f32).sin();
                    *v = acc;
                }
            });
            data
        };
        let one = run(1);
        for t in [2, 3, 5] {
            assert_eq!(one, run(t), "thread count {t} changed results");
        }
    }

    #[test]
    fn stats_accumulate_and_efficiency_bounded() {
        let bk = Backend::new(2);
        assert_eq!(bk.stats().regions, 0);
        assert_eq!(bk.stats().efficiency(), 1.0);
        let mut data = vec![1u64; 20_000];
        bk.par_chunks_mut(&mut data, 500, |_, c| {
            for v in c.iter_mut() {
                *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        });
        let s = bk.stats();
        assert_eq!(s.regions, 1);
        assert!(s.wall > Duration::ZERO);
        assert!(s.busy > Duration::ZERO);
        assert_eq!(s.threads, 2);
        // Clones share the counters.
        let other = bk.clone();
        other.par_chunks_mut(&mut data, 500, |_, _| {});
        assert_eq!(bk.stats().regions, 2);
    }

    /// Runtime repartitioning: clones share the thread cell, the clamp
    /// holds, and outputs stay bit-identical across mid-run resizes.
    #[test]
    fn set_threads_shared_across_clones_and_deterministic() {
        let bk = Backend::new(2);
        let other = bk.clone();
        other.set_threads(5);
        assert_eq!(bk.threads(), 5);
        other.set_threads(0);
        assert_eq!(bk.threads(), 1, "resize clamps to >= 1");

        let body = |ci: usize, chunk: &mut [f32]| {
            let mut acc = ci as f32 * 0.25;
            for (i, v) in chunk.iter_mut().enumerate() {
                acc = acc * 0.998 + (i as f32).cos();
                *v = acc;
            }
        };
        let mut baseline = vec![0f32; 50_000];
        Backend::new(1).par_chunks_mut(&mut baseline, 777, body);
        let resized = Backend::new(1);
        for t in [4, 2, 7, 1, 3] {
            resized.set_threads(t);
            let mut data = vec![0f32; 50_000];
            resized.par_chunks_mut(&mut data, 777, body);
            assert_eq!(baseline, data, "resize to {t} changed results");
        }
    }

    #[test]
    fn from_env_reads_override() {
        // Serial-safe: this test owns the variable for its duration only
        // if no other test touches it — use a unique value and restore.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Backend::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Backend::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
    }
}
