//! Reusable `f32` buffer arena for kernel temporaries.

/// A scratch-buffer arena: large per-call temporaries (im2col column
/// matrices, GEMM packing panels, attention score buffers, IDCT planes)
/// are taken from the arena and recycled back, so their backing
/// allocations survive across layers and across forward passes.
///
/// The arena is deliberately simple — a free list of `Vec<f32>` handed out
/// largest-capacity-first — because the hot paths want exactly one thing:
/// after warm-up, *zero* allocator traffic per call. [`Scratch::take`]
/// zero-fills, which is orders of magnitude cheaper than `malloc` for the
/// multi-megabyte buffers convolution layers use.
///
/// # Examples
///
/// ```
/// use vserve_compute::Scratch;
///
/// let mut scratch = Scratch::new();
/// let buf = scratch.take(1024);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// let cap = buf.capacity();
/// scratch.recycle(buf);
/// // The next take of a same-or-smaller size reuses the allocation.
/// let again = scratch.take(512);
/// assert!(again.capacity() >= cap.min(512));
/// assert_eq!(scratch.allocations(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
    allocations: u64,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// largest recycled allocation when one exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match self.pop_largest() {
            Some(b) => b,
            None => {
                self.allocations += 1;
                Vec::new()
            }
        };
        buf.clear();
        if buf.capacity() < len {
            // Growing a recycled buffer is still an allocator round trip;
            // count it so "zero-alloc after warm-up" is checkable.
            self.allocations += 1;
        }
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the arena for later reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of allocator round trips (`Vec` growths) the arena has
    /// performed since creation. Steady-state kernel code should keep this
    /// constant across calls.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Buffers currently waiting for reuse.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    fn pop_largest(&mut self) -> Option<Vec<f32>> {
        let idx = self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)?;
        Some(self.free.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_recycle() {
        let mut s = Scratch::new();
        let mut buf = s.take(64);
        buf.iter_mut().for_each(|v| *v = 7.0);
        s.recycle(buf);
        let buf = s.take(64);
        assert!(buf.iter().all(|&v| v == 0.0));
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut s = Scratch::new();
        // Warm up with the largest sizes used.
        let a = s.take(1000);
        let b = s.take(500);
        s.recycle(a);
        s.recycle(b);
        let warm = s.allocations();
        for _ in 0..10 {
            let a = s.take(1000);
            let b = s.take(500);
            s.recycle(a);
            s.recycle(b);
        }
        assert_eq!(s.allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn largest_first_matches_big_requests() {
        let mut s = Scratch::new();
        let small = s.take(10);
        let big = s.take(1000);
        s.recycle(small);
        s.recycle(big);
        // A mid-size request takes the big buffer, not a grown small one.
        let n = s.allocations();
        let mid = s.take(600);
        assert!(mid.capacity() >= 1000);
        assert_eq!(s.allocations(), n);
    }

    #[test]
    fn pooled_tracks_free_list() {
        let mut s = Scratch::new();
        assert_eq!(s.pooled(), 0);
        let a = s.take(8);
        s.recycle(a);
        assert_eq!(s.pooled(), 1);
        let _ = s.take(4);
        assert_eq!(s.pooled(), 0);
        s.recycle(Vec::new()); // zero-capacity buffers are not pooled
        assert_eq!(s.pooled(), 0);
    }
}
