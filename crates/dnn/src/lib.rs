//! A minimal DNN inference engine with honest FLOPs accounting.
//!
//! The paper serves real vision models (ViT, ResNet, TinyViT, Faster
//! R-CNN, FaceNet); this crate implements the substrate those models run
//! on rather than assuming an external framework:
//!
//! * [`kernels`] — GEMM, im2col convolution, attention, normalizations,
//!   activations, pooling — plain `f32` CPU implementations.
//! * [`graph`] — a topologically ordered graph IR with shape inference and
//!   MAC counting (`1 MAC = 1 FLOP`, the convention behind the model-card
//!   numbers the paper's Fig 4 uses).
//! * [`models`] — builders for the paper's model families; their FLOPs and
//!   parameter counts reproduce published values from the architecture
//!   definitions themselves.
//! * [`Model`] — deterministic weight instantiation + a runnable forward
//!   pass, so the suite's analytic cost models are backed by executable
//!   kernels.
//!
//! # Examples
//!
//! ```
//! use vserve_dnn::models;
//!
//! # fn main() -> Result<(), vserve_dnn::DnnError> {
//! let vit_b = models::vit_base(224)?;
//! let gflops = vit_b.flops() as f64 / 1e9;
//! assert!((gflops - 17.5).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
mod exec;
pub mod graph;
pub mod kernels;
pub mod models;

pub use exec::Model;

/// Errors from graph construction and model execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnError {
    /// An operator rejected its input shapes; `detail` explains why.
    ShapeMismatch {
        /// Operator name.
        op: &'static str,
        /// Human-readable cause.
        detail: String,
    },
    /// A node referenced an id that is not an earlier node in the graph.
    BadNodeRef(usize),
}

impl std::fmt::Display for DnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            DnnError::BadNodeRef(id) => write!(f, "node references unknown input {id}"),
        }
    }
}

impl std::error::Error for DnnError {}
