//! Model architecture builders for the families the paper benchmarks.
//!
//! Each builder returns a [`Graph`] whose FLOPs/parameter counts are
//! computed from the actual architecture, so the numbers used by the
//! serving cost models are grounded in real graph definitions rather than
//! hard-coded constants. Builders take the input resolution so the same
//! architecture can be used at test scale (e.g. 32×32) and paper scale
//! (224×224).

use crate::graph::{Graph, NodeId, Op, Shape};
use crate::DnnError;

/// Builds a ViT-style encoder: patch embedding, `depth` pre-norm
/// transformer blocks, class-token head.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is not divisible by
/// `patch` or `embed` is not divisible by `heads`.
pub fn vit(
    img: usize,
    patch: usize,
    embed: usize,
    depth: usize,
    heads: usize,
    classes: usize,
) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = g.push(Op::Patchify { patch, embed }, &[g.input()])?;
    for _ in 0..depth {
        let n1 = g.push(Op::LayerNorm, &[x])?;
        let attn = g.push(Op::MultiHeadAttention { heads }, &[n1])?;
        let r1 = g.push(Op::Add, &[x, attn])?;
        let n2 = g.push(Op::LayerNorm, &[r1])?;
        let mlp = g.push(Op::Mlp { hidden: embed * 4 }, &[n2])?;
        x = g.push(Op::Add, &[r1, mlp])?;
    }
    let n = g.push(Op::LayerNorm, &[x])?;
    let cls = g.push(Op::TakeToken { index: 0 }, &[n])?;
    g.push(Op::Linear { out: classes }, &[cls])?;
    Ok(g)
}

/// ViT-Tiny/16 (~1.26 GFLOPs at 224²).
pub fn vit_tiny(img: usize) -> Result<Graph, DnnError> {
    vit(img, 16, 192, 12, 3, 1000)
}

/// ViT-Small/16 (~4.6 GFLOPs at 224²).
pub fn vit_small(img: usize) -> Result<Graph, DnnError> {
    vit(img, 16, 384, 12, 6, 1000)
}

/// ViT-Base/16 (~17.5 GFLOPs at 224²) — the paper's primary model.
pub fn vit_base(img: usize) -> Result<Graph, DnnError> {
    vit(img, 16, 768, 12, 12, 1000)
}

/// ViT-Large/16 (~61.6 GFLOPs at 224²).
pub fn vit_large(img: usize) -> Result<Graph, DnnError> {
    vit(img, 16, 1024, 24, 16, 1000)
}

/// A TinyViT-5M-class compact transformer (~1.3 GFLOPs at 224²).
pub fn tiny_vit(img: usize) -> Result<Graph, DnnError> {
    vit(img, 16, 320, 5, 5, 1000)
}

fn basic_block(g: &mut Graph, x: NodeId, out_c: usize, stride: usize) -> Result<NodeId, DnnError> {
    let c1 = g.push(
        Op::Conv2d {
            out_c,
            k: 3,
            stride,
            pad: 1,
        },
        &[x],
    )?;
    let b1 = g.push(Op::BatchNorm, &[c1])?;
    let r1 = g.push(Op::Relu, &[b1])?;
    let c2 = g.push(
        Op::Conv2d {
            out_c,
            k: 3,
            stride: 1,
            pad: 1,
        },
        &[r1],
    )?;
    let b2 = g.push(Op::BatchNorm, &[c2])?;
    let shortcut = if stride != 1 || g.shape(x) != g.shape(b2) {
        let p = g.push(
            Op::Conv2d {
                out_c,
                k: 1,
                stride,
                pad: 0,
            },
            &[x],
        )?;
        g.push(Op::BatchNorm, &[p])?
    } else {
        x
    };
    let sum = g.push(Op::Add, &[b2, shortcut])?;
    g.push(Op::Relu, &[sum])
}

fn bottleneck_block(
    g: &mut Graph,
    x: NodeId,
    width: usize,
    stride: usize,
) -> Result<NodeId, DnnError> {
    let out_c = width * 4;
    let c1 = g.push(
        Op::Conv2d {
            out_c: width,
            k: 1,
            stride: 1,
            pad: 0,
        },
        &[x],
    )?;
    let b1 = g.push(Op::BatchNorm, &[c1])?;
    let r1 = g.push(Op::Relu, &[b1])?;
    let c2 = g.push(
        Op::Conv2d {
            out_c: width,
            k: 3,
            stride,
            pad: 1,
        },
        &[r1],
    )?;
    let b2 = g.push(Op::BatchNorm, &[c2])?;
    let r2 = g.push(Op::Relu, &[b2])?;
    let c3 = g.push(
        Op::Conv2d {
            out_c,
            k: 1,
            stride: 1,
            pad: 0,
        },
        &[r2],
    )?;
    let b3 = g.push(Op::BatchNorm, &[c3])?;
    let shortcut = if stride != 1 || g.shape(x) != g.shape(b3) {
        let p = g.push(
            Op::Conv2d {
                out_c,
                k: 1,
                stride,
                pad: 0,
            },
            &[x],
        )?;
        g.push(Op::BatchNorm, &[p])?
    } else {
        x
    };
    let sum = g.push(Op::Add, &[b3, shortcut])?;
    g.push(Op::Relu, &[sum])
}

fn resnet_stem(g: &mut Graph) -> Result<NodeId, DnnError> {
    let c = g.push(
        Op::Conv2d {
            out_c: 64,
            k: 7,
            stride: 2,
            pad: 3,
        },
        &[g.input()],
    )?;
    let b = g.push(Op::BatchNorm, &[c])?;
    let r = g.push(Op::Relu, &[b])?;
    g.push(Op::MaxPool { k: 3, stride: 2 }, &[r])
}

/// ResNet-18 (~1.8 GFLOPs at 224²).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small for the stem
/// (minimum 32).
pub fn resnet18(img: usize, classes: usize) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = resnet_stem(&mut g)?;
    for (stage, &width) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(&mut g, x, width, stride)?;
        }
    }
    let p = g.push(Op::GlobalAvgPool, &[x])?;
    g.push(Op::Linear { out: classes }, &[p])?;
    Ok(g)
}

/// ResNet-34 (~3.6 GFLOPs at 224²).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small for the stem
/// (minimum 32).
pub fn resnet34(img: usize, classes: usize) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = resnet_stem(&mut g)?;
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage, &(width, blocks)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(&mut g, x, width, stride)?;
        }
    }
    let p = g.push(Op::GlobalAvgPool, &[x])?;
    g.push(Op::Linear { out: classes }, &[p])?;
    Ok(g)
}

/// ResNet-50 (~4.1 GFLOPs at 224²).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small for the stem
/// (minimum 32).
pub fn resnet50(img: usize, classes: usize) -> Result<Graph, DnnError> {
    resnet50_width(img, classes, 1.0)
}

/// ResNet-50 with scaled stage widths (a ConvNeXt-class knob: ×1.9 lands
/// near 15 GFLOPs at 224²).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small for the stem
/// (minimum 32).
///
/// # Panics
///
/// Panics if `width_mult` is not positive.
pub fn resnet50_width(img: usize, classes: usize, width_mult: f64) -> Result<Graph, DnnError> {
    assert!(width_mult > 0.0, "width multiplier must be positive");
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = resnet_stem(&mut g)?;
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage, &(width, blocks)) in stages.iter().enumerate() {
        let width = ((width as f64 * width_mult).round() as usize).max(8);
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = bottleneck_block(&mut g, x, width, stride)?;
        }
    }
    let p = g.push(Op::GlobalAvgPool, &[x])?;
    g.push(Op::Linear { out: classes }, &[p])?;
    Ok(g)
}

/// A FaceNet-class face-embedding CNN (~1.5 GFLOPs at 160²), producing a
/// 512-d embedding. Used as the second stage of the paper's multi-DNN
/// pipeline (§4.7).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small (minimum 32).
pub fn facenet(img: usize) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = resnet_stem(&mut g)?;
    for &(width, stride) in &[(96usize, 1usize), (128, 2), (192, 1), (256, 2), (320, 1)] {
        x = basic_block(&mut g, x, width, stride)?;
    }
    let p = g.push(Op::GlobalAvgPool, &[x])?;
    g.push(Op::Linear { out: 512 }, &[p])?;
    Ok(g)
}

/// A Faster-R-CNN-class detector (~37 GFLOPs at 640²): ResNet-50 trunk,
/// 3×3 RPN head, and a dense detection head. Used as the first stage of
/// the paper's multi-DNN pipeline (§4.7).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img` is too small (minimum 64).
pub fn faster_rcnn(img: usize) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let mut x = resnet_stem(&mut g)?;
    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    for (stage, &(width, blocks)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = bottleneck_block(&mut g, x, width, stride)?;
        }
    }
    // RPN: 3×3 conv + objectness/box branches on the final feature map.
    let rpn = g.push(
        Op::Conv2d {
            out_c: 512,
            k: 3,
            stride: 1,
            pad: 1,
        },
        &[x],
    )?;
    let rpn_r = g.push(Op::Relu, &[rpn])?;
    let _obj = g.push(
        Op::Conv2d {
            out_c: 9,
            k: 1,
            stride: 1,
            pad: 0,
        },
        &[rpn_r],
    )?;
    let boxes = g.push(
        Op::Conv2d {
            out_c: 36,
            k: 1,
            stride: 1,
            pad: 0,
        },
        &[rpn_r],
    )?;
    // Detection head over pooled features (modeled densely).
    let head = g.push(
        Op::Conv2d {
            out_c: 256,
            k: 3,
            stride: 1,
            pad: 1,
        },
        &[boxes],
    )?;
    let head_r = g.push(Op::Relu, &[head])?;
    let p = g.push(Op::GlobalAvgPool, &[head_r])?;
    g.push(Op::Linear { out: 91 * 5 }, &[p])?;
    Ok(g)
}

/// A compact CNN for unit tests and live-mode examples (runs a real
/// forward pass in well under a millisecond).
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `img < 8`.
pub fn micro_cnn(img: usize, classes: usize) -> Result<Graph, DnnError> {
    let mut g = Graph::new(Shape::Chw(3, img, img));
    let c1 = g.push(
        Op::Conv2d {
            out_c: 8,
            k: 3,
            stride: 2,
            pad: 1,
        },
        &[g.input()],
    )?;
    let r1 = g.push(Op::Relu, &[c1])?;
    let c2 = g.push(
        Op::Conv2d {
            out_c: 16,
            k: 3,
            stride: 2,
            pad: 1,
        },
        &[r1],
    )?;
    let r2 = g.push(Op::Relu, &[c2])?;
    let p = g.push(Op::GlobalAvgPool, &[r2])?;
    let fc = g.push(Op::Linear { out: classes }, &[p])?;
    g.push(Op::Softmax, &[fc])?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gflops(g: &Graph) -> f64 {
        g.flops() as f64 / 1e9
    }

    #[test]
    fn vit_base_flops_match_published() {
        let g = vit_base(224).unwrap();
        let f = gflops(&g);
        assert!((f - 17.5).abs() < 1.0, "ViT-B flops {f}");
        // ~86 M parameters
        let p = g.params() as f64 / 1e6;
        assert!((p - 86.0).abs() < 6.0, "ViT-B params {p}M");
    }

    #[test]
    fn vit_family_ordering() {
        let t = gflops(&vit_tiny(224).unwrap());
        let s = gflops(&vit_small(224).unwrap());
        let b = gflops(&vit_base(224).unwrap());
        let l = gflops(&vit_large(224).unwrap());
        assert!((t - 1.26).abs() < 0.2, "ViT-T {t}");
        assert!((s - 4.6).abs() < 0.5, "ViT-S {s}");
        assert!((l - 61.6).abs() < 4.0, "ViT-L {l}");
        assert!(t < s && s < b && b < l);
    }

    #[test]
    fn resnet_flops_match_published() {
        let r18 = gflops(&resnet18(224, 1000).unwrap());
        let r50 = gflops(&resnet50(224, 1000).unwrap());
        assert!((r18 - 1.8).abs() < 0.3, "ResNet-18 {r18}");
        assert!((r50 - 4.1).abs() < 0.5, "ResNet-50 {r50}");
        let p50 = resnet50(224, 1000).unwrap().params() as f64 / 1e6;
        assert!((p50 - 25.5).abs() < 3.0, "ResNet-50 params {p50}M");
    }

    #[test]
    fn resnet34_between_18_and_50() {
        let r18 = gflops(&resnet18(224, 1000).unwrap());
        let r34 = gflops(&resnet34(224, 1000).unwrap());
        let r50 = gflops(&resnet50(224, 1000).unwrap());
        assert!(
            r18 < r34 && r34 < r50 * 1.05,
            "r18 {r18} r34 {r34} r50 {r50}"
        );
        assert!((r34 - 3.6).abs() < 0.5, "ResNet-34 {r34}");
    }

    #[test]
    fn width_multiplier_scales_flops() {
        let base = gflops(&resnet50(224, 1000).unwrap());
        let wide = gflops(&resnet50_width(224, 1000, 1.9).unwrap());
        assert!(wide > 2.5 * base, "base {base} wide {wide}");
    }

    #[test]
    fn tiny_vit_is_efficient() {
        let f = gflops(&tiny_vit(224).unwrap());
        assert!((f - 1.3).abs() < 0.3, "TinyViT {f}");
    }

    #[test]
    fn detector_is_heavy() {
        let f = gflops(&faster_rcnn(640).unwrap());
        assert!(f > 25.0 && f < 60.0, "detector {f}");
    }

    #[test]
    fn facenet_scale() {
        let f = gflops(&facenet(160).unwrap());
        assert!(f > 0.8 && f < 3.0, "facenet {f}");
    }

    #[test]
    fn vit_rejects_indivisible_patch() {
        assert!(vit(225, 16, 192, 2, 3, 10).is_err());
    }

    #[test]
    fn builders_work_at_test_scale() {
        use crate::Model;
        use vserve_tensor::Tensor;
        // Small resolutions instantiate and run.
        let g = resnet18(32, 10).unwrap();
        let m = Model::from_graph(g, 1);
        let out = m.forward(&Tensor::zeros(&[1, 3, 32, 32])).unwrap();
        assert_eq!(out.shape(), &[1, 10]);

        let g = vit(32, 16, 48, 1, 4, 10).unwrap();
        let m = Model::from_graph(g, 1);
        let out = m.forward(&Tensor::zeros(&[1, 3, 32, 32])).unwrap();
        assert_eq!(out.shape(), &[1, 10]);
    }

    #[test]
    fn micro_cnn_distribution() {
        use crate::Model;
        use vserve_tensor::Tensor;
        let m = Model::from_graph(micro_cnn(16, 4).unwrap(), 9);
        let out = m.forward(&Tensor::zeros(&[1, 3, 16, 16])).unwrap();
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }
}
