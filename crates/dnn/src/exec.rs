//! Model instantiation (weights) and forward execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vserve_compute::{Backend, Scratch};
use vserve_tensor::Tensor;

use crate::graph::{Graph, NodeId, Op, Shape};
use crate::kernels;
use crate::DnnError;

/// A runtime activation: a flat buffer holding `n` items of the logical
/// per-item shape, stored item-major (item 0's elements, then item 1's…).
///
/// Carrying the batch count here is what lets every graph node execute
/// once per *batch* instead of once per image: row-wise kernels (linear,
/// layer norm, softmax, MLP) simply see `n × rows` rows, convolutions go
/// through the batched im2col path, and the remaining spatial ops iterate
/// over item chunks inside a single node evaluation.
#[derive(Debug, Clone)]
struct Activation {
    shape: Shape,
    n: usize,
    data: Vec<f32>,
}

/// An instantiated model: a [`Graph`] plus deterministic random weights.
///
/// The suite never trains; weights exist so the forward pass exercises the
/// real compute kernels (and so FLOPs estimates are backed by runnable
/// code). The same `(graph, seed)` pair always produces identical weights
/// and therefore identical outputs.
///
/// # Examples
///
/// ```
/// use vserve_dnn::graph::{Graph, Op, Shape};
/// use vserve_dnn::Model;
/// use vserve_tensor::Tensor;
///
/// # fn main() -> Result<(), vserve_dnn::DnnError> {
/// let mut g = Graph::new(Shape::Vec(8));
/// g.push(Op::Linear { out: 4 }, &[g.input()])?;
/// let model = Model::from_graph(g, 42);
/// let out = model.forward(&Tensor::zeros(&[1, 8]))?;
/// assert_eq!(out.shape(), &[1, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Model {
    graph: Graph,
    weights: Vec<Vec<Vec<f32>>>,
    /// Worker pool used by the heavy kernels. Defaults to serial; swap in a
    /// multi-threaded pool with [`Model::with_backend`] — outputs are
    /// bit-identical either way.
    backend: Backend,
    /// Scratch arena reused across layers and forward passes. Behind a
    /// mutex so `forward` can stay `&self`; concurrent callers that lose
    /// the race fall back to a per-call arena rather than serializing.
    scratch: Mutex<Scratch>,
    /// Forward passes that lost the `scratch` race and paid for a fresh
    /// local arena. The fallback used to be silent, which hid real
    /// allocation pressure from concurrent callers; see
    /// [`Model::scratch_fallbacks`].
    scratch_fallbacks: AtomicU64,
}

impl Clone for Model {
    fn clone(&self) -> Self {
        Model {
            graph: self.graph.clone(),
            weights: self.weights.clone(),
            backend: self.backend.clone(),
            scratch: Mutex::new(Scratch::new()),
            // A clone has its own arena and has never lost a race on it.
            scratch_fallbacks: AtomicU64::new(0),
        }
    }
}

fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

fn init(rng: &mut StdRng, n: usize, fan_in: usize) -> Vec<f32> {
    let scale = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
    (0..n).map(|_| normal(rng) * scale).collect()
}

impl Model {
    /// Instantiates deterministic He-initialized weights for `graph`.
    pub fn from_graph(graph: Graph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(graph.nodes().len());
        for node in graph.nodes() {
            let input = node
                .inputs
                .first()
                .map(|&id| graph.shape(id))
                .unwrap_or(&node.shape);
            weights.push(Self::init_node(&node.op, input, &mut rng));
        }
        Model {
            graph,
            weights,
            backend: Backend::serial(),
            scratch: Mutex::new(Scratch::new()),
            scratch_fallbacks: AtomicU64::new(0),
        }
    }

    /// Replaces the compute backend used by the forward pass.
    ///
    /// Outputs are bit-identical for any thread count (see
    /// [`vserve_compute::Backend`]); only throughput changes.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The compute backend the forward pass runs on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Number of forward passes that found the shared scratch arena busy
    /// and allocated a throwaway local arena instead. Zero for purely
    /// sequential use; a steadily climbing value under concurrent
    /// `forward` calls means the process is paying per-request allocation
    /// costs the arena was meant to amortize (shard the model, or clone
    /// it per worker).
    pub fn scratch_fallbacks(&self) -> u64 {
        self.scratch_fallbacks.load(Ordering::Relaxed)
    }

    fn init_node(op: &Op, input: &Shape, rng: &mut StdRng) -> Vec<Vec<f32>> {
        match (op, input) {
            (Op::Conv2d { out_c, k, .. }, Shape::Chw(in_c, _, _)) => {
                let fan = in_c * k * k;
                vec![init(rng, out_c * fan, fan), vec![0.0; *out_c]]
            }
            (Op::Linear { out }, Shape::Tokens(_, d)) | (Op::Linear { out }, Shape::Vec(d)) => {
                vec![init(rng, out * d, *d), vec![0.0; *out]]
            }
            (Op::LayerNorm, s) => {
                let d = last_dim(s);
                vec![vec![1.0; d], vec![0.0; d]]
            }
            (Op::BatchNorm, Shape::Chw(c, _, _)) => vec![vec![1.0; *c], vec![0.0; *c]],
            (Op::Patchify { patch, embed }, Shape::Chw(c, h, w)) => {
                let fan = c * patch * patch;
                let l = (h / patch) * (w / patch) + 1;
                vec![
                    init(rng, embed * fan, fan),
                    vec![0.0; *embed],
                    init(rng, *embed, *embed),
                    init(rng, l * embed, *embed),
                ]
            }
            (Op::MultiHeadAttention { .. }, Shape::Tokens(_, d)) => vec![
                init(rng, 3 * d * d, *d),
                vec![0.0; 3 * d],
                init(rng, d * d, *d),
                vec![0.0; *d],
            ],
            (Op::Mlp { hidden }, Shape::Tokens(_, d)) => vec![
                init(rng, hidden * d, *d),
                vec![0.0; *hidden],
                init(rng, d * hidden, *hidden),
                vec![0.0; *d],
            ],
            _ => Vec::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Runs the model on a batch-1 input tensor.
    ///
    /// Accepts `[1, C, H, W]` for CHW-input graphs and `[1, D]` for
    /// vector-input graphs.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if the tensor does not match the
    /// graph's input shape.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, DnnError> {
        let expected = self.graph.shape(self.graph.input());
        let act = tensor_to_activation(input, expected, Some(1))?;
        Ok(activation_to_tensor(self.run(act)?))
    }

    /// Runs the model on an NCHW batch tensor (`[N, …]` leading dimension).
    ///
    /// Every graph layer executes **once for the whole batch**: row-wise
    /// kernels see `N × rows` rows, convolutions use a batched im2col with
    /// a single GEMM. Output carries the same leading `N`. Results are
    /// bit-identical to calling [`forward`](Self::forward) per item.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if the tensor (ignoring its
    /// leading batch dimension) does not match the graph's input shape.
    pub fn forward_batched(&self, batch: &Tensor) -> Result<Tensor, DnnError> {
        let expected = self.graph.shape(self.graph.input());
        let act = tensor_to_activation(batch, expected, None)?;
        Ok(activation_to_tensor(self.run(act)?))
    }

    /// Stacks batch-1 tensors, runs [`forward_batched`](Self::forward_batched)
    /// once, and splits the outputs back per item.
    ///
    /// This is the entry point a dynamic batcher wants: N assembled
    /// requests become **one** inference call.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if the items disagree on shape
    /// or do not match the graph input.
    ///
    /// # Examples
    ///
    /// ```
    /// use vserve_dnn::graph::{Graph, Op, Shape};
    /// use vserve_dnn::Model;
    /// use vserve_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), vserve_dnn::DnnError> {
    /// let mut g = Graph::new(Shape::Vec(8));
    /// g.push(Op::Linear { out: 4 }, &[g.input()])?;
    /// let model = Model::from_graph(g, 42);
    /// let a = Tensor::zeros(&[1, 8]);
    /// let b = Tensor::zeros(&[1, 8]);
    /// let outs = model.forward_batch(&[&a, &b])?;
    /// assert_eq!(outs.len(), 2);
    /// assert_eq!(outs[0].shape(), &[1, 4]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn forward_batch(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>, DnnError> {
        let stacked = Tensor::stack(inputs).map_err(|e| DnnError::ShapeMismatch {
            op: "batch",
            detail: e.to_string(),
        })?;
        Ok(self.forward_batched(&stacked)?.unstack())
    }

    fn run(&self, act: Activation) -> Result<Activation, DnnError> {
        // Reuse the model's arena when it is free; under concurrent
        // forwards the losers run with a fresh local arena instead of
        // blocking on the winner.
        let mut local = None;
        let mut guard = self.scratch.try_lock().ok();
        let scratch: &mut Scratch = match guard.as_deref_mut() {
            Some(s) => s,
            None => {
                self.scratch_fallbacks.fetch_add(1, Ordering::Relaxed);
                local.insert(Scratch::new())
            }
        };
        let mut values: Vec<Option<Activation>> = vec![None; self.graph.nodes().len()];
        values[0] = Some(act);
        for (i, node) in self.graph.nodes().iter().enumerate().skip(1) {
            let inputs: Vec<&Activation> = node
                .inputs
                .iter()
                .map(|&NodeId(j)| values[j].as_ref().expect("topological order"))
                .collect();
            let out = self.eval(i, &node.op, &node.shape, &inputs, scratch)?;
            values[i] = Some(out);
        }
        Ok(values[self.graph.output().0]
            .take()
            .expect("output evaluated"))
    }

    fn eval(
        &self,
        node: usize,
        op: &Op,
        out_shape: &Shape,
        inputs: &[&Activation],
        scratch: &mut Scratch,
    ) -> Result<Activation, DnnError> {
        let bk = &self.backend;
        let w = &self.weights[node];
        let x = inputs.first().ok_or_else(|| DnnError::ShapeMismatch {
            op: op.name(),
            detail: "missing runtime input".into(),
        })?;
        let n = x.n;
        let data = match op {
            Op::Input(_) => x.data.clone(),
            Op::Conv2d {
                out_c,
                k,
                stride,
                pad,
            } => {
                let Shape::Chw(in_c, h, wd) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = Vec::new();
                kernels::conv2d_batch_into(
                    bk, scratch, &x.data, n, &w[0], &w[1], in_c, h, wd, *out_c, *k, *stride, *pad,
                    &mut y,
                );
                y
            }
            Op::Linear { out } => {
                let (rows, d) = rows_dim(&x.shape);
                let mut y = vec![0.0; n * rows * out];
                kernels::linear_with(bk, &x.data, &w[0], &w[1], &mut y, n * rows, d, *out);
                y
            }
            Op::LayerNorm => {
                let (rows, d) = rows_dim(&x.shape);
                let mut y = x.data.clone();
                kernels::layer_norm(&mut y, n * rows, d, &w[0], &w[1]);
                y
            }
            Op::BatchNorm => {
                let Shape::Chw(c, h, wd) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = x.data.clone();
                for item in y.chunks_mut(c * h * wd) {
                    kernels::batch_norm(item, c, h * wd, &w[0], &w[1]);
                }
                y
            }
            Op::Relu => {
                let mut y = x.data.clone();
                kernels::relu(&mut y);
                y
            }
            Op::Gelu => {
                let mut y = x.data.clone();
                kernels::gelu(&mut y);
                y
            }
            Op::MaxPool { k, stride } => {
                let Shape::Chw(c, h, wd) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = Vec::new();
                for item in x.data.chunks(c * h * wd) {
                    y.extend(kernels::max_pool2d(item, c, h, wd, *k, *stride).0);
                }
                y
            }
            Op::GlobalAvgPool => {
                let Shape::Chw(c, h, wd) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = Vec::with_capacity(n * c);
                for item in x.data.chunks(c * h * wd) {
                    y.extend(kernels::global_avg_pool(item, c, h * wd));
                }
                y
            }
            Op::Patchify { patch, embed } => {
                let Shape::Chw(c, h, wd) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let (ph, pw) = (h / patch, wd / patch);
                let l = ph * pw + 1;
                let fan = c * patch * patch;
                let mut y = Vec::with_capacity(n * l * embed);
                for item in x.data.chunks(c * h * wd) {
                    // Gather patches into rows, then project.
                    let mut patches = scratch.take((l - 1) * fan);
                    for py in 0..ph {
                        for px in 0..pw {
                            let row = py * pw + px;
                            for ch in 0..c {
                                for dy in 0..*patch {
                                    for dx in 0..*patch {
                                        patches[row * fan + (ch * patch + dy) * patch + dx] =
                                            item[(ch * h + py * patch + dy) * wd + px * patch + dx];
                                    }
                                }
                            }
                        }
                    }
                    let mut tokens = vec![0.0; l * embed];
                    // class token first
                    tokens[..*embed].copy_from_slice(&w[2]);
                    let mut projected = scratch.take((l - 1) * embed);
                    kernels::linear_with(
                        bk,
                        &patches,
                        &w[0],
                        &w[1],
                        &mut projected,
                        l - 1,
                        fan,
                        *embed,
                    );
                    tokens[*embed..].copy_from_slice(&projected);
                    scratch.recycle(patches);
                    scratch.recycle(projected);
                    // positional embeddings
                    for (t, p) in tokens.iter_mut().zip(&w[3]) {
                        *t += p;
                    }
                    y.extend(tokens);
                }
                y
            }
            Op::MultiHeadAttention { heads } => {
                let Shape::Tokens(l, d) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = Vec::with_capacity(n * l * d);
                for item in x.data.chunks(l * d) {
                    attention(
                        bk, scratch, item, l, d, *heads, &w[0], &w[1], &w[2], &w[3], &mut y,
                    );
                }
                y
            }
            Op::Mlp { hidden } => {
                let Shape::Tokens(l, d) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let rows = n * l;
                let mut h1 = scratch.take(rows * hidden);
                kernels::linear_with(bk, &x.data, &w[0], &w[1], &mut h1, rows, d, *hidden);
                kernels::gelu(&mut h1);
                let mut out = vec![0.0; rows * d];
                kernels::linear_with(bk, &h1, &w[2], &w[3], &mut out, rows, *hidden, d);
                scratch.recycle(h1);
                out
            }
            Op::Add => {
                let b = inputs[1];
                x.data.iter().zip(&b.data).map(|(a, b)| a + b).collect()
            }
            Op::TakeToken { index } => {
                let Shape::Tokens(l, d) = x.shape else {
                    unreachable!("shape checked at build")
                };
                let mut y = Vec::with_capacity(n * d);
                for item in x.data.chunks(l * d) {
                    y.extend_from_slice(&item[index * d..(index + 1) * d]);
                }
                y
            }
            Op::Softmax => {
                let (rows, d) = rows_dim(&x.shape);
                let mut y = x.data.clone();
                kernels::softmax_rows(&mut y, n * rows, d);
                y
            }
        };
        debug_assert_eq!(data.len() % n, 0, "batched eval must produce whole items");
        Ok(Activation {
            shape: out_shape.clone(),
            n,
            data,
        })
    }
}

fn last_dim(s: &Shape) -> usize {
    match *s {
        Shape::Chw(_, _, w) => w,
        Shape::Tokens(_, d) => d,
        Shape::Vec(d) => d,
    }
}

fn rows_dim(s: &Shape) -> (usize, usize) {
    match *s {
        Shape::Tokens(l, d) => (l, d),
        Shape::Vec(d) => (1, d),
        Shape::Chw(c, h, w) => (c * h, w),
    }
}

/// Single-item multi-head attention, appending `l × d` outputs to `out`.
/// All intermediates (QKV projection, score matrix, head concat) come from
/// `scratch`; score and weighted-sum loops parallelize over disjoint token
/// rows, keeping per-element reduction order fixed.
#[allow(clippy::too_many_arguments)]
fn attention(
    bk: &Backend,
    scratch: &mut Scratch,
    x: &[f32],
    l: usize,
    d: usize,
    heads: usize,
    wqkv: &[f32],
    bqkv: &[f32],
    wo: &[f32],
    bo: &[f32],
    out: &mut Vec<f32>,
) {
    let dh = d / heads;
    let mut qkv = scratch.take(l * 3 * d);
    kernels::linear_with(bk, x, wqkv, bqkv, &mut qkv, l, d, 3 * d);
    let scale = 1.0 / (dh as f32).sqrt();
    let mut concat = scratch.take(l * d);
    let mut scores = scratch.take(l * l);
    for h in 0..heads {
        let off = h * dh;
        // q(t, i) = qkv[t·3d + i], k(t, i) = qkv[t·3d + d + i],
        // v(t, i) = qkv[t·3d + 2d + i].
        let qkv_ref = &qkv;
        bk.par_chunks_mut(&mut scores, l, |ti, srow| {
            for (tj, sv) in srow.iter_mut().enumerate() {
                let mut s = 0.0;
                for e in 0..dh {
                    s += qkv_ref[ti * 3 * d + off + e] * qkv_ref[tj * 3 * d + d + off + e];
                }
                *sv = s * scale;
            }
        });
        kernels::softmax_rows(&mut scores, l, l);
        let scores_ref = &scores;
        bk.par_chunks_mut(&mut concat, d, |ti, crow| {
            for e in 0..dh {
                let mut s = 0.0;
                for tj in 0..l {
                    s += scores_ref[ti * l + tj] * qkv_ref[tj * 3 * d + 2 * d + off + e];
                }
                crow[off + e] = s;
            }
        });
    }
    let mut proj = scratch.take(l * d);
    kernels::linear_with(bk, &concat, wo, bo, &mut proj, l, d, d);
    out.extend_from_slice(&proj);
    scratch.recycle(qkv);
    scratch.recycle(concat);
    scratch.recycle(scores);
    scratch.recycle(proj);
}

fn tensor_to_activation(
    t: &Tensor,
    expected: &Shape,
    want_n: Option<usize>,
) -> Result<Activation, DnnError> {
    let (n, ok) = match (t.shape(), expected) {
        ([n, c, h, w], Shape::Chw(ec, eh, ew)) => (*n, c == ec && h == eh && w == ew),
        ([n, d], Shape::Vec(ed)) => (*n, d == ed),
        ([n, l, d], Shape::Tokens(el, ed)) => (*n, l == el && d == ed),
        _ => (0, false),
    };
    if !ok || n == 0 || want_n.is_some_and(|w| n != w) {
        return Err(DnnError::ShapeMismatch {
            op: "input",
            detail: format!(
                "tensor {:?} does not match graph input {expected:?}",
                t.shape()
            ),
        });
    }
    Ok(Activation {
        shape: expected.clone(),
        n,
        data: t.as_slice().to_vec(),
    })
}

fn activation_to_tensor(a: Activation) -> Tensor {
    let shape: Vec<usize> = match a.shape {
        Shape::Chw(c, h, w) => vec![a.n, c, h, w],
        Shape::Tokens(l, d) => vec![a.n, l, d],
        Shape::Vec(d) => vec![a.n, d],
    };
    Tensor::from_vec(&shape, a.data).expect("activation buffer matches its shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Op, Shape};

    fn tiny_cnn() -> Graph {
        let mut g = Graph::new(Shape::Chw(3, 16, 16));
        let c1 = g
            .push(
                Op::Conv2d {
                    out_c: 4,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                &[g.input()],
            )
            .unwrap();
        let b1 = g.push(Op::BatchNorm, &[c1]).unwrap();
        let r1 = g.push(Op::Relu, &[b1]).unwrap();
        let p = g.push(Op::MaxPool { k: 2, stride: 2 }, &[r1]).unwrap();
        let gp = g.push(Op::GlobalAvgPool, &[p]).unwrap();
        let fc = g.push(Op::Linear { out: 10 }, &[gp]).unwrap();
        g.push(Op::Softmax, &[fc]).unwrap();
        g
    }

    fn tiny_vit() -> Graph {
        let mut g = Graph::new(Shape::Chw(3, 16, 16));
        let mut x = g
            .push(
                Op::Patchify {
                    patch: 8,
                    embed: 24,
                },
                &[g.input()],
            )
            .unwrap();
        for _ in 0..2 {
            let n1 = g.push(Op::LayerNorm, &[x]).unwrap();
            let a = g.push(Op::MultiHeadAttention { heads: 4 }, &[n1]).unwrap();
            let r1 = g.push(Op::Add, &[x, a]).unwrap();
            let n2 = g.push(Op::LayerNorm, &[r1]).unwrap();
            let m = g.push(Op::Mlp { hidden: 48 }, &[n2]).unwrap();
            x = g.push(Op::Add, &[r1, m]).unwrap();
        }
        let n = g.push(Op::LayerNorm, &[x]).unwrap();
        let cls = g.push(Op::TakeToken { index: 0 }, &[n]).unwrap();
        g.push(Op::Linear { out: 10 }, &[cls]).unwrap();
        g
    }

    #[test]
    fn cnn_forward_produces_distribution() {
        let model = Model::from_graph(tiny_cnn(), 7);
        let mut input = Tensor::zeros(&[1, 3, 16, 16]);
        input.fill(0.25);
        let out = model.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 10]);
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax sums to {sum}");
        assert!(out.as_slice().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn vit_forward_runs() {
        let model = Model::from_graph(tiny_vit(), 3);
        let input = Tensor::zeros(&[1, 3, 16, 16]);
        let out = model.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 10]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn same_seed_same_output() {
        let a = Model::from_graph(tiny_cnn(), 11);
        let b = Model::from_graph(tiny_cnn(), 11);
        let c = Model::from_graph(tiny_cnn(), 12);
        let mut input = Tensor::zeros(&[1, 3, 16, 16]);
        input.as_mut_slice()[10] = 1.0;
        let oa = a.forward(&input).unwrap();
        let ob = b.forward(&input).unwrap();
        let oc = c.forward(&input).unwrap();
        assert_eq!(oa.as_slice(), ob.as_slice());
        assert_ne!(oa.as_slice(), oc.as_slice());
    }

    #[test]
    fn forward_rejects_wrong_input() {
        let model = Model::from_graph(tiny_cnn(), 1);
        let bad = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(model.forward(&bad).is_err());
    }

    fn varied_input(i: usize) -> Tensor {
        let mut t = Tensor::zeros(&[1, 3, 16, 16]);
        for (j, v) in t.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 131 + j * 17) % 255) as f32 / 255.0;
        }
        t
    }

    #[test]
    fn forward_batch_matches_per_item_cnn() {
        let model = Model::from_graph(tiny_cnn(), 21);
        let items: Vec<Tensor> = (0..4).map(varied_input).collect();
        let refs: Vec<&Tensor> = items.iter().collect();
        let batched = model.forward_batch(&refs).unwrap();
        assert_eq!(batched.len(), 4);
        for (item, out) in items.iter().zip(&batched) {
            let solo = model.forward(item).unwrap();
            // Batched im2col and row-blocked kernels keep per-element
            // accumulation order, so outputs must match bit for bit.
            assert_eq!(solo.as_slice(), out.as_slice());
            assert_eq!(out.shape(), &[1, 10]);
        }
    }

    #[test]
    fn forward_batch_matches_per_item_vit() {
        let model = Model::from_graph(tiny_vit(), 8);
        let items: Vec<Tensor> = (0..3).map(varied_input).collect();
        let refs: Vec<&Tensor> = items.iter().collect();
        let batched = model.forward_batch(&refs).unwrap();
        for (item, out) in items.iter().zip(&batched) {
            let solo = model.forward(item).unwrap();
            assert_eq!(solo.as_slice(), out.as_slice());
        }
    }

    #[test]
    fn forward_batched_keeps_leading_dim() {
        let model = Model::from_graph(tiny_cnn(), 4);
        let batch = Tensor::zeros(&[5, 3, 16, 16]);
        let out = model.forward_batched(&batch).unwrap();
        assert_eq!(out.shape(), &[5, 10]);
        // Identical inputs must produce identical rows.
        let rows: Vec<&[f32]> = out.as_slice().chunks(10).collect();
        assert!(rows.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn forward_batch_rejects_mixed_shapes() {
        let model = Model::from_graph(tiny_cnn(), 4);
        let a = Tensor::zeros(&[1, 3, 16, 16]);
        let b = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(model.forward_batch(&[&a, &b]).is_err());
        assert!(model.forward_batch(&[]).is_err());
    }

    #[test]
    fn multithreaded_backend_bit_identical() {
        // The whole point of the static partitioning: thread count must
        // never change a single output bit, CNN or ViT.
        for (graph, seed) in [(tiny_cnn(), 31), (tiny_vit(), 32)] {
            let serial = Model::from_graph(graph.clone(), seed);
            let items: Vec<Tensor> = (0..3).map(varied_input).collect();
            let refs: Vec<&Tensor> = items.iter().collect();
            let want = serial.forward_batch(&refs).unwrap();
            for threads in [2, 4] {
                let par =
                    Model::from_graph(graph.clone(), seed).with_backend(Backend::new(threads));
                assert_eq!(par.backend().threads(), threads);
                let got = par.forward_batch(&refs).unwrap();
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.as_slice(), g.as_slice(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_stops_allocating_across_forwards() {
        let model = Model::from_graph(tiny_vit(), 9);
        let input = varied_input(0);
        for _ in 0..3 {
            let _ = model.forward(&input).unwrap();
        }
        let warm = model.scratch.lock().unwrap().allocations();
        for _ in 0..3 {
            let _ = model.forward(&input).unwrap();
        }
        assert_eq!(
            model.scratch.lock().unwrap().allocations(),
            warm,
            "steady-state forwards must not grow the scratch arena"
        );
    }

    #[test]
    fn scratch_fallbacks_zero_when_sequential() {
        let model = Model::from_graph(tiny_cnn(), 2);
        let input = varied_input(1);
        for _ in 0..4 {
            let _ = model.forward(&input).unwrap();
        }
        assert_eq!(
            model.scratch_fallbacks(),
            0,
            "sequential forwards never lose the scratch race"
        );
    }

    #[test]
    fn scratch_fallbacks_count_contended_forwards() {
        // Pin the shared arena from one thread, then forward from others:
        // every one of those passes must take the local-arena fallback and
        // be counted, while outputs stay identical to the uncontended run.
        let model = std::sync::Arc::new(Model::from_graph(tiny_cnn(), 2));
        let input = varied_input(1);
        let want = model.forward(&input).unwrap();
        let guard = model.scratch.lock().unwrap();
        let contended = 3;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..contended)
                .map(|_| {
                    let model = std::sync::Arc::clone(&model);
                    let input = input.clone();
                    s.spawn(move || model.forward(&input).unwrap())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap().as_slice(), want.as_slice());
            }
        });
        drop(guard);
        assert_eq!(model.scratch_fallbacks(), contended);
        // A clone (of the Model, not the Arc) starts from a clean slate.
        assert_eq!(Model::clone(&model).scratch_fallbacks(), 0);
    }

    #[test]
    fn residual_add_changes_output() {
        // Sanity: the Add path is actually wired (removing it would change
        // shapes, so instead check attention output isn't identical to
        // input).
        let model = Model::from_graph(tiny_vit(), 5);
        let mut input = Tensor::zeros(&[1, 3, 16, 16]);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 7) as f32 / 7.0;
        }
        let out = model.forward(&input).unwrap();
        assert!(out.as_slice().iter().any(|&v| v.abs() > 1e-6));
    }
}
