//! Compute kernels: GEMM, convolution, normalization, activations.
//!
//! # Loop order and determinism
//!
//! Every GEMM-shaped kernel in this module accumulates each output element
//! in strictly ascending `p` (reduction index) order. The naive [`gemm`]
//! does so with the textbook row-major-friendly `(i, p, j)` loop nest —
//! the `B` row streams sequentially through the inner loop — and the
//! tiled [`gemm_tiled`] preserves the *same per-element order* inside its
//! register tiles, so the two produce **bit-identical** results and the
//! naive kernel doubles as an exact reference oracle for the fast path.
//! Parallel variants split work over disjoint output regions only, never
//! over the reduction dimension, so results are also bit-identical across
//! thread counts. This is what keeps the calibrated paper-shape tests
//! meaningful while the kernels get faster.
//!
//! The fast paths take a [`Backend`] (worker pool) and [`Scratch`] (buffer
//! arena) so per-layer temporaries — im2col column matrices, GEMM packing
//! panels, product buffers — are reused across calls instead of
//! reallocated. The legacy signatures ([`conv2d`], [`conv2d_batch`],
//! [`linear`]) remain as single-threaded wrappers over the same code,
//! using a thread-local scratch arena.

use std::cell::RefCell;

use vserve_compute::{Backend, Scratch};

/// Rows per GEMM register tile.
const GEMM_MR: usize = 4;
/// Columns per GEMM register tile (and packed-B panel width).
const GEMM_NR: usize = 8;

// The SIMD micro-kernel is written against the same tile shape; a drift
// in either constant must fail loudly at compile time, not mis-slice.
const _: () = assert!(GEMM_MR == vserve_simd::kernels::TILE_MR);
const _: () = assert!(GEMM_NR == vserve_simd::kernels::TILE_NR);

thread_local! {
    /// Arena backing the legacy kernel entry points, so even callers that
    /// never construct a [`Scratch`] stop paying per-call allocations.
    static LOCAL_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

fn with_local_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    LOCAL_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// `C ← A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// This is the *reference* kernel: simple enough to audit, kept as the
/// exactness oracle for [`gemm_tiled`]. The inner loop is a dense axpy
/// with no data-dependent branches (a skip-zero test mispredicts on dense
/// activations and saves nothing).
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    c.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aip * bv;
            }
        }
    }
}

/// Cache-blocked, register-tiled `C ← A·B` with a packed-`B` panel,
/// parallel over row bands of `C`.
///
/// `B` is first repacked into `GEMM_NR`-column panels (zero-padded past
/// `n`) so the micro-kernel streams one contiguous panel while holding a
/// `GEMM_MR × GEMM_NR` accumulator tile in registers: `C` is written once
/// instead of `k` times, and the panel walk is a pure sequential read.
/// Accumulation per output element runs in ascending `p` order, so the
/// result is bit-identical to [`gemm`] — and to itself under any
/// [`Backend`] thread count, since parallelism only splits the disjoint
/// row bands.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm_tiled(
    bk: &Backend,
    scratch: &mut Scratch,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // An empty reduction is a defined product: C = 0 (matches the
        // reference kernel's unconditional fill). Returning here also
        // keeps `panels_per_block` away from a divide-by-zero.
        c.fill(0.0);
        return;
    }
    let panels = n.div_ceil(GEMM_NR);
    let mut packed = scratch.take(panels * k * GEMM_NR);
    pack_panels(bk, b, &mut packed, k, n);
    if bk.threads() == 1 {
        // Serial: panel-block outer, row-band inner — every row band of
        // C consumes one ~128 KiB block of packed B while it is still
        // cache-hot, so B is streamed from memory roughly once instead
        // of once per band. Wide-and-short C (the im2col shape) is
        // memory-bound on that stream.
        let ppb = panels_per_block(k);
        let mut p0 = 0;
        while p0 < panels {
            let p1 = (p0 + ppb).min(panels);
            for (bi, cband) in c.chunks_mut(GEMM_MR * n).enumerate() {
                gemm_row_band(a, &packed, cband, bi * GEMM_MR, k, n, p0, p1);
            }
            p0 = p1;
        }
    } else {
        // Parallel: each worker owns disjoint row bands and sweeps all
        // panels; concurrent bands share the packed stream via the
        // shared cache. Per-element arithmetic is identical to the
        // serial path (panel blocks partition columns, not k), so the
        // result stays bit-identical across thread counts.
        bk.par_chunks_mut(c, GEMM_MR * n, |bi, cband| {
            gemm_row_band(a, &packed, cband, bi * GEMM_MR, k, n, 0, panels);
        });
    }
    scratch.recycle(packed);
}

/// Packed panels per cache block: one block (~128 KiB of packed `B`)
/// should fit L2 alongside the `C` band tiles that consume it.
fn panels_per_block(k: usize) -> usize {
    (128 * 1024 / (k * GEMM_NR * 4)).max(1)
}

/// Repacks row-major `b (k×n)` into `GEMM_NR`-column panels, parallel
/// over panels. Tail columns of the final panel stay at the zero fill.
fn pack_panels(bk: &Backend, b: &[f32], packed: &mut [f32], k: usize, n: usize) {
    bk.par_chunks_mut(packed, k * GEMM_NR, |pi, panel| {
        let j0 = pi * GEMM_NR;
        let cols = GEMM_NR.min(n - j0);
        for p in 0..k {
            panel[p * GEMM_NR..p * GEMM_NR + cols]
                .copy_from_slice(&b[p * n + j0..p * n + j0 + cols]);
        }
    });
}

/// The register micro-kernel: a full-`k`, ascending-`p` accumulation of
/// the `mr × GEMM_NR` tile `A[i0..i0+mr] · panel`. Shared by every tiled
/// path so their per-element arithmetic is identical by construction.
#[inline]
fn gemm_tile(
    a: &[f32],
    panel: &[f32],
    i0: usize,
    mr: usize,
    k: usize,
) -> [[f32; GEMM_NR]; GEMM_MR] {
    let mut acc = [[0f32; GEMM_NR]; GEMM_MR];
    if mr == GEMM_MR {
        // Full tile: fixed-trip-count loops so the accumulators live in
        // vector registers.
        let a0 = &a[i0 * k..(i0 + 1) * k];
        let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
        let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
        let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
        let [ref mut t0, ref mut t1, ref mut t2, ref mut t3] = acc;
        for p in 0..k {
            let brow: &[f32; GEMM_NR] = panel[p * GEMM_NR..(p + 1) * GEMM_NR].try_into().unwrap();
            let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
            for j in 0..GEMM_NR {
                t0[j] += v0 * brow[j];
                t1[j] += v1 * brow[j];
                t2[j] += v2 * brow[j];
                t3[j] += v3 * brow[j];
            }
        }
    } else {
        for p in 0..k {
            let brow: &[f32; GEMM_NR] = panel[p * GEMM_NR..(p + 1) * GEMM_NR].try_into().unwrap();
            for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                let av = a[(i0 + r) * k + p];
                for j in 0..GEMM_NR {
                    accr[j] += av * brow[j];
                }
            }
        }
    }
    acc
}

/// Routes one register tile to the runtime-selected SIMD micro-kernel,
/// or to the scalar [`gemm_tile`] when dispatch resolves to scalar. Both
/// accumulate full-`k` ascending-`p` with unfused multiply-add, so the
/// choice is invisible in the output bits.
#[inline]
fn gemm_tile_dispatch(
    a: &[f32],
    panel: &[f32],
    i0: usize,
    mr: usize,
    k: usize,
) -> [[f32; GEMM_NR]; GEMM_MR] {
    if vserve_simd::active_level().is_scalar() {
        gemm_tile(a, panel, i0, mr, k)
    } else {
        vserve_simd::kernels::gemm_tile8(a, panel, i0, mr, k)
    }
}

/// Computes the `[p0, p1)` panel range of `cband = A[i0..i0+mr] · B`
/// from the packed panels. `mr` is inferred from the band length and may
/// be short on the final band.
fn gemm_row_band(
    a: &[f32],
    packed: &[f32],
    cband: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
    p0: usize,
    p1: usize,
) {
    let mr = cband.len() / n;
    for pi in p0..p1 {
        let j0 = pi * GEMM_NR;
        let cols = GEMM_NR.min(n - j0);
        let panel = &packed[pi * k * GEMM_NR..(pi + 1) * k * GEMM_NR];
        let acc = gemm_tile_dispatch(a, panel, i0, mr, k);
        for (r, accr) in acc.iter().enumerate().take(mr) {
            cband[r * n + j0..r * n + j0 + cols].copy_from_slice(&accr[..cols]);
        }
    }
}

/// `y ← W·x + b` applied row-wise: `x (rows×in)`, `w (out×in)` row-major,
/// `bias (out)`, `y (rows×out)`. Single-threaded; see [`linear_with`].
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn linear(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    y: &mut [f32],
    rows: usize,
    input: usize,
    output: usize,
) {
    linear_with(&Backend::serial(), x, w, bias, y, rows, input, output);
}

/// [`linear`] parallelized over output rows: each worker owns a disjoint
/// band of `y` rows, and per-row dot products are computed exactly as in
/// the serial kernel, so results are bit-identical for any thread count.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn linear_with(
    bk: &Backend,
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    y: &mut [f32],
    rows: usize,
    input: usize,
    output: usize,
) {
    assert_eq!(x.len(), rows * input, "x dimensions mismatch");
    assert_eq!(w.len(), output * input, "w dimensions mismatch");
    assert_eq!(bias.len(), output, "bias dimensions mismatch");
    assert_eq!(y.len(), rows * output, "y dimensions mismatch");
    bk.par_chunks_mut(y, output, |r, yr| {
        let xr = &x[r * input..(r + 1) * input];
        for (o, yo) in yr.iter_mut().enumerate() {
            let wr = &w[o * input..(o + 1) * input];
            let mut acc = bias[o];
            for (xv, wv) in xr.iter().zip(wr) {
                acc += xv * wv;
            }
            *yo = acc;
        }
    });
}

/// im2col: unfolds `input (c×h×w)` into columns `(c·k·k) × (oh·ow)` for a
/// `k×k` convolution with the given stride and zero padding.
#[allow(clippy::too_many_arguments)] // mirrors the convolution signature
pub fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    out.clear();
    out.resize(c * k * k * oh * ow, 0.0);
    let cols = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            input[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    (oh, ow)
}

/// Batched im2col into a caller-provided buffer, parallel over the
/// `c·k·k` unfold rows (each row covers every image, so rows are the
/// natural disjoint unit). Column index = `img · oh·ow + output pixel`,
/// matching [`conv2d_batch_ref`]'s layout. Interior spans copy without
/// per-pixel bounds branches; `stride == 1` interiors are straight
/// `memcpy`s.
#[allow(clippy::too_many_arguments)]
fn im2col_batch(
    bk: &Backend,
    input: &[f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cols: &mut [f32],
    oh: usize,
    ow: usize,
) {
    let plane = oh * ow;
    let cols_n = n * plane;
    bk.par_chunks_mut(cols, cols_n, |row, dst| {
        let ch = row / (k * k);
        let ky = (row / k) % k;
        let kx = row % k;
        // ox range with in-bounds ix = ox·stride + kx − pad.
        let x0 = if kx >= pad {
            0
        } else {
            (pad - kx).div_ceil(stride).min(ow)
        };
        let x1 = if w + pad > kx {
            ((w + pad - kx - 1) / stride + 1).min(ow)
        } else {
            0
        };
        for img in 0..n {
            let base = (img * in_c + ch) * h * w;
            for oy in 0..oh {
                let iy = (oy * stride + ky) as isize - pad as isize;
                let drow = &mut dst[img * plane + oy * ow..img * plane + (oy + 1) * ow];
                if iy < 0 || iy >= h as isize {
                    drow.fill(0.0);
                    continue;
                }
                let srow = &input[base + iy as usize * w..base + (iy as usize + 1) * w];
                drow[..x0].fill(0.0);
                if stride == 1 {
                    let ix0 = x0 + kx - pad;
                    drow[x0..x1].copy_from_slice(&srow[ix0..ix0 + (x1 - x0)]);
                } else {
                    for (ox, dv) in drow[x0..x1].iter_mut().enumerate() {
                        *dv = srow[(x0 + ox) * stride + kx - pad];
                    }
                }
                drow[x1..].fill(0.0);
            }
        }
    });
}

/// 2-D convolution of a single image `input (in_c×h×w)` with
/// `weight (out_c×in_c×k×k)` and `bias (out_c)`, producing
/// `(out_c×oh×ow)`. Single-image wrapper over [`conv2d_batch`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Vec<f32>, usize, usize) {
    conv2d_batch(input, 1, weight, bias, in_c, h, w, out_c, k, stride, pad)
}

/// Batched 2-D convolution of `input (n×in_c×h×w)` with
/// `weight (out_c×in_c×k×k)` and `bias (out_c)`, producing
/// `(n×out_c×oh×ow)`.
///
/// The whole batch is unfolded into one im2col matrix whose columns are
/// grouped by image, so a *single* GEMM covers every image — this is what
/// makes dynamic batching pay off: the weight matrix streams through the
/// cache once per batch instead of once per image.
///
/// Single-threaded wrapper over [`conv2d_batch_into`] with a thread-local
/// scratch arena; per-element accumulation order matches [`conv2d`] and
/// [`conv2d_batch_ref`], so results are bit-identical to both.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch(
    input: &[f32],
    n: usize,
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Vec<f32>, usize, usize) {
    with_local_scratch(|scratch| {
        let mut out = Vec::new();
        let (oh, ow) = conv2d_batch_into(
            &Backend::serial(),
            scratch,
            input,
            n,
            weight,
            bias,
            in_c,
            h,
            w,
            out_c,
            k,
            stride,
            pad,
            &mut out,
        );
        (out, oh, ow)
    })
}

/// The workhorse batched convolution: parallel im2col + packed tiled
/// GEMM whose micro-kernel tiles are written *directly* into the NCHW
/// output with bias added (parallel over images), with every temporary
/// drawn from `scratch`. Fusing the output write removes the
/// `(out_c × n·plane)` GEMM product and its separate permute pass — at
/// these wide-and-short shapes that intermediate costs more memory
/// traffic than the multiply itself. Writes the `(n×out_c×oh×ow)` result
/// into `out` (resized as needed) and returns `(oh, ow)`.
///
/// After the first call at a given shape the only allocator traffic is
/// `out` itself; `forward_batch` hands the same scratch arena to every
/// layer, so a steady-state forward pass performs no im2col/GEMM
/// allocations at all.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_into(
    bk: &Backend,
    scratch: &mut Scratch,
    input: &[f32],
    n: usize,
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    assert_eq!(input.len(), n * in_c * h * w, "input dimensions mismatch");
    assert_eq!(
        weight.len(),
        out_c * in_c * k * k,
        "weight dimensions mismatch"
    );
    assert_eq!(bias.len(), out_c, "bias dimensions mismatch");
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let plane = oh * ow;
    let ckk = in_c * k * k;
    let cols_n = n * plane;
    let mut cols = scratch.take(ckk * cols_n);
    im2col_batch(bk, input, n, in_c, h, w, k, stride, pad, &mut cols, oh, ow);
    let panels = cols_n.div_ceil(GEMM_NR);
    let mut packed = scratch.take(panels * ckk * GEMM_NR);
    pack_panels(bk, &cols, &mut packed, ckk, cols_n);
    scratch.recycle(cols);
    out.clear();
    out.resize(n * out_c * plane, 0.0);
    bk.par_chunks_mut(out, out_c * plane, |img, dst| {
        conv_gemm_image(weight, &packed, bias, dst, out_c, ckk, cols_n, plane, img);
    });
    scratch.recycle(packed);
    (oh, ow)
}

/// Computes one image's `(out_c × plane)` output block from the packed
/// im2col panels, adding bias as each micro-kernel tile is stored. Panel
/// blocks are walked outermost so ~128 KiB of packed columns stays
/// cache-hot across all channel bands; a panel straddling an image
/// boundary is recomputed by both neighbours (at most one per image).
/// Accumulation per output element is full-`k` ascending-`p` via
/// [`gemm_tile_dispatch`], then `+ bias` — exactly the reference order,
/// so results are bit-identical to [`conv2d_batch_ref`] for any thread
/// count and any SIMD dispatch level.
#[allow(clippy::too_many_arguments)]
fn conv_gemm_image(
    weight: &[f32],
    packed: &[f32],
    bias: &[f32],
    dst: &mut [f32],
    out_c: usize,
    k: usize,
    n: usize,
    plane: usize,
    img: usize,
) {
    let j_lo = img * plane;
    let j_hi = j_lo + plane;
    let pa = j_lo / GEMM_NR;
    let pz = j_hi.div_ceil(GEMM_NR);
    let ppb = panels_per_block(k);
    let bands = out_c.div_ceil(GEMM_MR);
    let mut p0 = pa;
    while p0 < pz {
        let p1 = (p0 + ppb).min(pz);
        for band in 0..bands {
            let i0 = band * GEMM_MR;
            let mr = GEMM_MR.min(out_c - i0);
            for pi in p0..p1 {
                let j0 = pi * GEMM_NR;
                let cols = GEMM_NR.min(n - j0);
                let panel = &packed[pi * k * GEMM_NR..(pi + 1) * k * GEMM_NR];
                let acc = gemm_tile_dispatch(weight, panel, i0, mr, k);
                let lo = j0.max(j_lo);
                let hi = (j0 + cols).min(j_hi);
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let b = bias[i0 + r];
                    let row =
                        &mut dst[(i0 + r) * plane + (lo - j_lo)..(i0 + r) * plane + (hi - j_lo)];
                    for (d, &s) in row.iter_mut().zip(&accr[lo - j0..hi - j0]) {
                        *d = s + b;
                    }
                }
            }
        }
        p0 = p1;
    }
}

/// Reference batched convolution: naive batched im2col + naive [`gemm`],
/// fresh allocations throughout. Kept verbatim as the exactness oracle
/// and the "naive" baseline in the kernels benchmark.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch_ref(
    input: &[f32],
    n: usize,
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Vec<f32>, usize, usize) {
    assert_eq!(input.len(), n * in_c * h * w, "input dimensions mismatch");
    assert_eq!(
        weight.len(),
        out_c * in_c * k * k,
        "weight dimensions mismatch"
    );
    assert_eq!(bias.len(), out_c, "bias dimensions mismatch");
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let plane = oh * ow;
    let ckk = in_c * k * k;
    let cols_n = n * plane;
    let mut cols = vec![0.0; ckk * cols_n];
    for img in 0..n {
        let base = img * in_c * h * w;
        for ch in 0..in_c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for ox in 0..ow {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                input[base + (ch * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                            cols[row * cols_n + img * plane + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
    }
    let mut prod = vec![0.0; out_c * cols_n];
    gemm(weight, &cols, &mut prod, out_c, ckk, cols_n);
    let mut out = vec![0.0; n * out_c * plane];
    for o in 0..out_c {
        let b = bias[o];
        for img in 0..n {
            let src = &prod[o * cols_n + img * plane..o * cols_n + (img + 1) * plane];
            let dst = &mut out[(img * out_c + o) * plane..(img * out_c + o + 1) * plane];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + b;
            }
        }
    }
    (out, oh, ow)
}

/// In-place ReLU.
pub fn relu(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place GELU (tanh approximation, as used by ViT/BERT).
pub fn gelu(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    for v in x {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044_715 * u * u * u)).tanh());
    }
}

/// Row-wise softmax over the last dimension: `x` is `rows × cols`.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols`.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols, "softmax dimensions mismatch");
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise layer normalization with affine parameters:
/// `x (rows × dim)`, `gamma (dim)`, `beta (dim)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn layer_norm(x: &mut [f32], rows: usize, dim: usize, gamma: &[f32], beta: &[f32]) {
    assert_eq!(x.len(), rows * dim, "layer_norm dimensions mismatch");
    assert_eq!(gamma.len(), dim, "gamma dimensions mismatch");
    assert_eq!(beta.len(), dim, "beta dimensions mismatch");
    const EPS: f32 = 1e-5;
    for r in 0..rows {
        let row = &mut x[r * dim..(r + 1) * dim];
        let mean: f32 = row.iter().sum::<f32>() / dim as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[i] + beta[i];
        }
    }
}

/// Channel-wise affine (inference-mode batch norm with folded statistics):
/// `x (c×plane)`, per-channel `scale` and `shift`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn batch_norm(x: &mut [f32], c: usize, plane: usize, scale: &[f32], shift: &[f32]) {
    assert_eq!(x.len(), c * plane, "batch_norm dimensions mismatch");
    assert_eq!(scale.len(), c, "scale dimensions mismatch");
    assert_eq!(shift.len(), c, "shift dimensions mismatch");
    for ch in 0..c {
        let (s, b) = (scale[ch], shift[ch]);
        for v in &mut x[ch * plane..(ch + 1) * plane] {
            *v = *v * s + b;
        }
    }
}

/// 2-D max pooling of `(c×h×w)` with a `k×k` window.
pub fn max_pool2d(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) -> (Vec<f32>, usize, usize) {
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        m = m.max(input[(ch * h + oy * stride + ky) * w + ox * stride + kx]);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = m;
            }
        }
    }
    (out, oh, ow)
}

/// Global average pooling `(c×h×w) → (c)`.
pub fn global_avg_pool(input: &[f32], c: usize, plane: usize) -> Vec<f32> {
    assert_eq!(input.len(), c * plane, "pool dimensions mismatch");
    (0..c)
        .map(|ch| input[ch * plane..(ch + 1) * plane].iter().sum::<f32>() / plane as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 100.0
            })
            .collect()
    }

    #[test]
    fn gemm_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // I2
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, b);
    }

    #[test]
    fn linear_matches_gemm_plus_bias() {
        let x = vec![1.0, 2.0, 3.0]; // 1x3
        let w = vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]; // 2x3
        let bias = vec![10.0, 20.0];
        let mut y = vec![0.0; 2];
        linear(&x, &w, &bias, &mut y, 1, 3, 2);
        assert_eq!(y, vec![11.0, 25.0]);
    }

    #[test]
    fn linear_with_threads_bit_identical() {
        let (rows, input, output) = (37, 19, 23);
        let x = pseudo(5, rows * input);
        let w = pseudo(6, output * input);
        let bias = pseudo(7, output);
        let mut serial = vec![0.0; rows * output];
        linear(&x, &w, &bias, &mut serial, rows, input, output);
        for threads in [2, 4] {
            let mut par = vec![0.0; rows * output];
            linear_with(
                &Backend::new(threads),
                &x,
                &w,
                &bias,
                &mut par,
                rows,
                input,
                output,
            );
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 conv with weight 1 reproduces the input.
        let input: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let (out, oh, ow) = conv2d(&input, &[1.0], &[0.0], 1, 3, 3, 1, 1, 1, 0);
        assert_eq!((oh, ow), (3, 3));
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_matches_direct() {
        // 3x3 input, 2x2 kernel, stride 1, no pad — hand-checkable.
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let weight = vec![1.0, 0.0, 0.0, 1.0]; // picks (0,0)+(1,1)
        let (out, oh, ow) = conv2d(&input, &weight, &[0.5], 1, 3, 3, 1, 2, 1, 0);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(
            out,
            vec![
                1.0 + 5.0 + 0.5,
                2.0 + 6.0 + 0.5,
                4.0 + 8.0 + 0.5,
                5.0 + 9.0 + 0.5
            ]
        );
    }

    #[test]
    fn conv2d_padding_zero_border() {
        let input = vec![1.0];
        let weight = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // center tap
        let (out, oh, ow) = conv2d(&input, &weight, &[0.0], 1, 1, 1, 1, 3, 1, 1);
        assert_eq!((oh, ow), (1, 1));
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn conv2d_batch_matches_per_image() {
        // Two distinct 2-channel images through the same 3×3 filters must
        // equal running conv2d on each image separately, bit for bit.
        let (in_c, h, w, out_c, k, stride, pad) = (2, 5, 4, 3, 3, 1, 1);
        let img_len = in_c * h * w;
        let imgs: Vec<f32> = (0..2 * img_len)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0)
            .collect();
        let weight: Vec<f32> = (0..out_c * in_c * k * k)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) / 10.0)
            .collect();
        let bias = vec![0.3, -0.2, 0.0];
        let (batched, boh, bow) =
            conv2d_batch(&imgs, 2, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
        let mut separate = Vec::new();
        for img in imgs.chunks(img_len) {
            let (out, oh, ow) = conv2d(img, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
            assert_eq!((oh, ow), (boh, bow));
            separate.extend(out);
        }
        assert_eq!(batched, separate);
    }

    #[test]
    fn conv2d_batch_single_image_matches_conv2d() {
        let input: Vec<f32> = (0..27).map(|v| v as f32 * 0.1).collect();
        let weight: Vec<f32> = (0..12).map(|v| (v as f32 - 6.0) * 0.2).collect();
        let (a, _, _) = conv2d(&input, &weight, &[0.5], 3, 3, 3, 1, 2, 1, 0);
        let (b, _, _) = conv2d_batch(&input, 1, &weight, &[0.5], 3, 3, 3, 1, 2, 1, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn conv2d_batch_matches_reference_exactly() {
        // Fast path (scratch + tiled GEMM + span-copied im2col) against the
        // preserved naive reference, across strides, pads, and raggedness.
        for (n, in_c, h, w, out_c, k, stride, pad) in [
            (1, 1, 5, 5, 1, 3, 1, 1),
            (2, 3, 9, 7, 5, 3, 1, 1),
            (3, 2, 8, 8, 4, 3, 2, 1),
            (2, 4, 11, 6, 3, 5, 2, 2),
            (1, 2, 6, 6, 2, 1, 1, 0),
            (2, 3, 7, 9, 4, 2, 2, 0),
        ] {
            let input = pseudo(n as u64 * 100 + k as u64, n * in_c * h * w);
            let weight = pseudo(31 + out_c as u64, out_c * in_c * k * k);
            let bias = pseudo(77, out_c);
            let (expect, eh, ew) =
                conv2d_batch_ref(&input, n, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
            let (got, oh, ow) =
                conv2d_batch(&input, n, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
            assert_eq!((oh, ow), (eh, ew));
            assert_eq!(got, expect, "shape n={n} k={k} s={stride} p={pad}");
        }
    }

    #[test]
    fn conv2d_batch_into_thread_counts_bit_identical() {
        let (n, in_c, h, w, out_c, k, stride, pad) = (3, 3, 13, 11, 6, 3, 1, 1);
        let input = pseudo(9, n * in_c * h * w);
        let weight = pseudo(10, out_c * in_c * k * k);
        let bias = pseudo(11, out_c);
        let run = |threads: usize| {
            let bk = Backend::new(threads);
            let mut scratch = Scratch::new();
            let mut out = Vec::new();
            conv2d_batch_into(
                &bk,
                &mut scratch,
                &input,
                n,
                &weight,
                &bias,
                in_c,
                h,
                w,
                out_c,
                k,
                stride,
                pad,
                &mut out,
            );
            out
        };
        let one = run(1);
        for t in [2, 3, 8] {
            assert_eq!(one, run(t), "threads={t}");
        }
    }

    #[test]
    fn conv2d_batch_into_steady_state_is_allocation_free() {
        let (n, in_c, h, w, out_c, k) = (2, 3, 16, 16, 8, 3);
        let input = pseudo(1, n * in_c * h * w);
        let weight = pseudo(2, out_c * in_c * k * k);
        let bias = pseudo(3, out_c);
        let bk = Backend::serial();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        // Two warm-up rounds: the largest-first free list can hand the
        // big cols-sized buffer to the small prod request once before
        // buffer-to-request assignment stabilizes.
        for _ in 0..2 {
            conv2d_batch_into(
                &bk,
                &mut scratch,
                &input,
                n,
                &weight,
                &bias,
                in_c,
                h,
                w,
                out_c,
                k,
                1,
                1,
                &mut out,
            );
        }
        let warm = scratch.allocations();
        for _ in 0..5 {
            conv2d_batch_into(
                &bk,
                &mut scratch,
                &input,
                n,
                &weight,
                &bias,
                in_c,
                h,
                w,
                out_c,
                k,
                1,
                1,
                &mut out,
            );
        }
        assert_eq!(
            scratch.allocations(),
            warm,
            "conv must not allocate scratch buffers after warm-up"
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layer_norm(&mut x, 1, 4, &gamma, &beta);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batch_norm_scales_and_shifts() {
        let mut x = vec![1.0, 1.0, 2.0, 2.0];
        batch_norm(&mut x, 2, 2, &[2.0, 0.5], &[0.0, 1.0]);
        assert_eq!(x, vec![2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_pool_picks_max() {
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let (out, oh, ow) = max_pool2d(&input, 1, 2, 2, 2, 2);
        assert_eq!((oh, ow), (1, 1));
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let input = vec![1.0, 3.0, 10.0, 20.0];
        assert_eq!(global_avg_pool(&input, 2, 2), vec![2.0, 15.0]);
    }

    #[test]
    fn relu_and_gelu_signs() {
        let mut x = vec![-1.0, 0.0, 2.0];
        relu(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let mut g = vec![-10.0, 0.0, 10.0];
        gelu(&mut g);
        assert!(g[0].abs() < 1e-3); // large negatives → ~0
        assert_eq!(g[1], 0.0);
        assert!((g[2] - 10.0).abs() < 1e-3); // large positives → identity
    }

    #[test]
    fn gemm_tiled_degenerate_dimensions_match_naive() {
        // Every zero-dimension combination is a defined product (C = 0 when
        // k == 0, or C is empty). The tiled kernel used to divide by zero in
        // `panels_per_block` when k == 0 on the serial path; this pins the
        // fix as `tiled == naive`, dirty output buffer included.
        for (m, k, n) in [
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (0, 0, 4),
            (0, 3, 0),
            (3, 0, 0),
            (0, 0, 0),
            (7, 0, 11),
        ] {
            let a = pseudo(11, m * k);
            let b = pseudo(13, k * n);
            let mut reference = vec![f32::NAN; m * n];
            gemm(&a, &b, &mut reference, m, k, n);
            for threads in [1, 3] {
                let mut tiled = vec![f32::NAN; m * n];
                let mut scratch = Scratch::new();
                gemm_tiled(
                    &Backend::new(threads),
                    &mut scratch,
                    &a,
                    &b,
                    &mut tiled,
                    m,
                    k,
                    n,
                );
                assert_eq!(
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    tiled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "m={m} k={k} n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn gemm_tiled_exact_on_dirty_recycled_scratch() {
        // `pack_panels` leaves the tail columns of the final panel "at the
        // zero fill" — which is only sound because `Scratch::take` hands
        // back zeroed storage even when recycling. Poison the arena with a
        // recycled buffer full of garbage, then run a ragged-n GEMM whose
        // final panel has tail columns: any stale value leaking into the
        // packed tail shows up as tiled != naive.
        let (m, k, n) = (9, 17, 13); // n % GEMM_NR != 0 → real tail columns
        let a = pseudo(3, m * k);
        let b = pseudo(5, k * n);
        let mut reference = vec![0.0; m * n];
        gemm(&a, &b, &mut reference, m, k, n);
        let mut scratch = Scratch::new();
        let panels = n.div_ceil(GEMM_NR);
        scratch.recycle(vec![f32::NAN; panels * k * GEMM_NR + 64]);
        let mut tiled = vec![0.0; m * n];
        gemm_tiled(
            &Backend::serial(),
            &mut scratch,
            &a,
            &b,
            &mut tiled,
            m,
            k,
            n,
        );
        assert_eq!(reference, tiled);
    }

    #[test]
    fn gemm_tiled_bit_identical_across_simd_levels() {
        // Same inputs through every dispatch level available on this host
        // must produce the same bits as the naive oracle. Shapes straddle
        // the MR/NR tile boundaries so ragged row and column tails run.
        for (m, k, n) in [(1, 1, 1), (4, 8, 8), (7, 19, 13), (33, 40, 29)] {
            let a = pseudo(17, m * k);
            let b = pseudo(19, k * n);
            let mut reference = vec![0.0; m * n];
            gemm(&a, &b, &mut reference, m, k, n);
            for level in vserve_simd::available_levels() {
                let applied = vserve_simd::set_level(level);
                assert_eq!(applied, level);
                let mut tiled = vec![0.0; m * n];
                let mut scratch = Scratch::new();
                gemm_tiled(
                    &Backend::serial(),
                    &mut scratch,
                    &a,
                    &b,
                    &mut tiled,
                    m,
                    k,
                    n,
                );
                assert_eq!(
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    tiled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "m={m} k={k} n={n} level={level}"
                );
            }
            vserve_simd::reset_level();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn gemm_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8,
                              seed in any::<u64>()) {
            let mut s = seed;
            let mut next = || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 100.0
            };
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut c = vec![0.0; m * n];
            gemm(&a, &b, &mut c, m, k, n);
            let expect = gemm_naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expect) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }

        // The tiled kernel is required to be *exactly* the naive kernel:
        // same per-element accumulation order, so same bits. Ragged shapes
        // deliberately straddle the MR/NR tile boundaries.
        #[test]
        fn gemm_tiled_matches_gemm_exactly(
            m in 1usize..40, k in 1usize..40, n in 1usize..40,
            threads in 1usize..5, seed in any::<u64>()
        ) {
            let mut s = seed | 1;
            let mut next = || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 100.0
            };
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut reference = vec![0.0; m * n];
            gemm(&a, &b, &mut reference, m, k, n);
            let mut tiled = vec![0.0; m * n];
            let mut scratch = Scratch::new();
            gemm_tiled(&Backend::new(threads), &mut scratch, &a, &b, &mut tiled, m, k, n);
            prop_assert_eq!(&reference, &tiled,
                "m={} k={} n={} threads={}", m, k, n, threads);
        }
    }
}
