//! Compute kernels: GEMM, convolution, normalization, activations.

/// `C ← A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// Loop order (i, p, j) with the `B` row in the inner loop keeps accesses
/// sequential, which is the textbook cache-friendly form for row-major data.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    c.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aip * bv;
            }
        }
    }
}

/// `y ← W·x + b` applied row-wise: `x (rows×in)`, `w (out×in)` row-major,
/// `bias (out)`, `y (rows×out)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn linear(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    y: &mut [f32],
    rows: usize,
    input: usize,
    output: usize,
) {
    assert_eq!(x.len(), rows * input, "x dimensions mismatch");
    assert_eq!(w.len(), output * input, "w dimensions mismatch");
    assert_eq!(bias.len(), output, "bias dimensions mismatch");
    assert_eq!(y.len(), rows * output, "y dimensions mismatch");
    for r in 0..rows {
        let xr = &x[r * input..(r + 1) * input];
        let yr = &mut y[r * output..(r + 1) * output];
        for (o, yo) in yr.iter_mut().enumerate() {
            let wr = &w[o * input..(o + 1) * input];
            let mut acc = bias[o];
            for (xv, wv) in xr.iter().zip(wr) {
                acc += xv * wv;
            }
            *yo = acc;
        }
    }
}

/// im2col: unfolds `input (c×h×w)` into columns `(c·k·k) × (oh·ow)` for a
/// `k×k` convolution with the given stride and zero padding.
#[allow(clippy::too_many_arguments)] // mirrors the convolution signature
pub fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    out.clear();
    out.resize(c * k * k * oh * ow, 0.0);
    let cols = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            input[(ch * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    (oh, ow)
}

/// 2-D convolution of a single image `input (in_c×h×w)` with
/// `weight (out_c×in_c×k×k)` and `bias (out_c)`, producing
/// `(out_c×oh×ow)`. Uses im2col + GEMM.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Vec<f32>, usize, usize) {
    assert_eq!(input.len(), in_c * h * w, "input dimensions mismatch");
    assert_eq!(
        weight.len(),
        out_c * in_c * k * k,
        "weight dimensions mismatch"
    );
    assert_eq!(bias.len(), out_c, "bias dimensions mismatch");
    let mut cols = Vec::new();
    let (oh, ow) = im2col(input, in_c, h, w, k, stride, pad, &mut cols);
    let mut out = vec![0.0; out_c * oh * ow];
    gemm(weight, &cols, &mut out, out_c, in_c * k * k, oh * ow);
    for (o, chunk) in out.chunks_mut(oh * ow).enumerate() {
        let b = bias[o];
        for v in chunk {
            *v += b;
        }
    }
    (out, oh, ow)
}

/// Batched 2-D convolution of `input (n×in_c×h×w)` with
/// `weight (out_c×in_c×k×k)` and `bias (out_c)`, producing
/// `(n×out_c×oh×ow)`.
///
/// The whole batch is unfolded into one im2col matrix whose columns are
/// grouped by image, so a *single* GEMM covers every image — this is what
/// makes dynamic batching pay off: the weight matrix streams through the
/// cache once per batch instead of once per image. Per-element accumulation
/// order matches [`conv2d`], so results are bit-identical to the per-image
/// path.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_batch(
    input: &[f32],
    n: usize,
    weight: &[f32],
    bias: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (Vec<f32>, usize, usize) {
    assert_eq!(input.len(), n * in_c * h * w, "input dimensions mismatch");
    assert_eq!(
        weight.len(),
        out_c * in_c * k * k,
        "weight dimensions mismatch"
    );
    assert_eq!(bias.len(), out_c, "bias dimensions mismatch");
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let plane = oh * ow;
    let ckk = in_c * k * k;
    // Batched im2col: column index = img * plane + output pixel, so each
    // GEMM output row holds the whole batch for one output channel.
    let cols_n = n * plane;
    let mut cols = vec![0.0; ckk * cols_n];
    for img in 0..n {
        let base = img * in_c * h * w;
        for ch in 0..in_c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for ox in 0..ow {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                input[base + (ch * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                            cols[row * cols_n + img * plane + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
    }
    let mut prod = vec![0.0; out_c * cols_n];
    gemm(weight, &cols, &mut prod, out_c, ckk, cols_n);
    // Permute (out_c × n·plane) → (n × out_c × plane), adding bias.
    let mut out = vec![0.0; n * out_c * plane];
    for o in 0..out_c {
        let b = bias[o];
        for img in 0..n {
            let src = &prod[o * cols_n + img * plane..o * cols_n + (img + 1) * plane];
            let dst = &mut out[(img * out_c + o) * plane..(img * out_c + o + 1) * plane];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + b;
            }
        }
    }
    (out, oh, ow)
}

/// In-place ReLU.
pub fn relu(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place GELU (tanh approximation, as used by ViT/BERT).
pub fn gelu(x: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    for v in x {
        let u = *v;
        *v = 0.5 * u * (1.0 + (C * (u + 0.044_715 * u * u * u)).tanh());
    }
}

/// Row-wise softmax over the last dimension: `x` is `rows × cols`.
///
/// # Panics
///
/// Panics if `x.len() != rows * cols`.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols, "softmax dimensions mismatch");
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise layer normalization with affine parameters:
/// `x (rows × dim)`, `gamma (dim)`, `beta (dim)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn layer_norm(x: &mut [f32], rows: usize, dim: usize, gamma: &[f32], beta: &[f32]) {
    assert_eq!(x.len(), rows * dim, "layer_norm dimensions mismatch");
    assert_eq!(gamma.len(), dim, "gamma dimensions mismatch");
    assert_eq!(beta.len(), dim, "beta dimensions mismatch");
    const EPS: f32 = 1e-5;
    for r in 0..rows {
        let row = &mut x[r * dim..(r + 1) * dim];
        let mean: f32 = row.iter().sum::<f32>() / dim as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[i] + beta[i];
        }
    }
}

/// Channel-wise affine (inference-mode batch norm with folded statistics):
/// `x (c×plane)`, per-channel `scale` and `shift`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn batch_norm(x: &mut [f32], c: usize, plane: usize, scale: &[f32], shift: &[f32]) {
    assert_eq!(x.len(), c * plane, "batch_norm dimensions mismatch");
    assert_eq!(scale.len(), c, "scale dimensions mismatch");
    assert_eq!(shift.len(), c, "shift dimensions mismatch");
    for ch in 0..c {
        let (s, b) = (scale[ch], shift[ch]);
        for v in &mut x[ch * plane..(ch + 1) * plane] {
            *v = *v * s + b;
        }
    }
}

/// 2-D max pooling of `(c×h×w)` with a `k×k` window.
pub fn max_pool2d(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) -> (Vec<f32>, usize, usize) {
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = vec![f32::NEG_INFINITY; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..k {
                    for kx in 0..k {
                        m = m.max(input[(ch * h + oy * stride + ky) * w + ox * stride + kx]);
                    }
                }
                out[(ch * oh + oy) * ow + ox] = m;
            }
        }
    }
    (out, oh, ow)
}

/// Global average pooling `(c×h×w) → (c)`.
pub fn global_avg_pool(input: &[f32], c: usize, plane: usize) -> Vec<f32> {
    assert_eq!(input.len(), c * plane, "pool dimensions mismatch");
    (0..c)
        .map(|ch| input[ch * plane..(ch + 1) * plane].iter().sum::<f32>() / plane as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gemm_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // I2
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, b);
    }

    #[test]
    fn linear_matches_gemm_plus_bias() {
        let x = vec![1.0, 2.0, 3.0]; // 1x3
        let w = vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]; // 2x3
        let bias = vec![10.0, 20.0];
        let mut y = vec![0.0; 2];
        linear(&x, &w, &bias, &mut y, 1, 3, 2);
        assert_eq!(y, vec![11.0, 25.0]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 conv with weight 1 reproduces the input.
        let input: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let (out, oh, ow) = conv2d(&input, &[1.0], &[0.0], 1, 3, 3, 1, 1, 1, 0);
        assert_eq!((oh, ow), (3, 3));
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_matches_direct() {
        // 3x3 input, 2x2 kernel, stride 1, no pad — hand-checkable.
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let weight = vec![1.0, 0.0, 0.0, 1.0]; // picks (0,0)+(1,1)
        let (out, oh, ow) = conv2d(&input, &weight, &[0.5], 1, 3, 3, 1, 2, 1, 0);
        assert_eq!((oh, ow), (2, 2));
        assert_eq!(
            out,
            vec![
                1.0 + 5.0 + 0.5,
                2.0 + 6.0 + 0.5,
                4.0 + 8.0 + 0.5,
                5.0 + 9.0 + 0.5
            ]
        );
    }

    #[test]
    fn conv2d_padding_zero_border() {
        let input = vec![1.0];
        let weight = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // center tap
        let (out, oh, ow) = conv2d(&input, &weight, &[0.0], 1, 1, 1, 1, 3, 1, 1);
        assert_eq!((oh, ow), (1, 1));
        assert_eq!(out, vec![1.0]);
    }

    #[test]
    fn conv2d_batch_matches_per_image() {
        // Two distinct 2-channel images through the same 3×3 filters must
        // equal running conv2d on each image separately, bit for bit.
        let (in_c, h, w, out_c, k, stride, pad) = (2, 5, 4, 3, 3, 1, 1);
        let img_len = in_c * h * w;
        let imgs: Vec<f32> = (0..2 * img_len)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0)
            .collect();
        let weight: Vec<f32> = (0..out_c * in_c * k * k)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) / 10.0)
            .collect();
        let bias = vec![0.3, -0.2, 0.0];
        let (batched, boh, bow) =
            conv2d_batch(&imgs, 2, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
        let mut separate = Vec::new();
        for img in imgs.chunks(img_len) {
            let (out, oh, ow) = conv2d(img, &weight, &bias, in_c, h, w, out_c, k, stride, pad);
            assert_eq!((oh, ow), (boh, bow));
            separate.extend(out);
        }
        assert_eq!(batched, separate);
    }

    #[test]
    fn conv2d_batch_single_image_matches_conv2d() {
        let input: Vec<f32> = (0..27).map(|v| v as f32 * 0.1).collect();
        let weight: Vec<f32> = (0..12).map(|v| (v as f32 - 6.0) * 0.2).collect();
        let (a, _, _) = conv2d(&input, &weight, &[0.5], 3, 3, 3, 1, 2, 1, 0);
        let (b, _, _) = conv2d_batch(&input, 1, &weight, &[0.5], 3, 3, 3, 1, 2, 1, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let s: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        layer_norm(&mut x, 1, 4, &gamma, &beta);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batch_norm_scales_and_shifts() {
        let mut x = vec![1.0, 1.0, 2.0, 2.0];
        batch_norm(&mut x, 2, 2, &[2.0, 0.5], &[0.0, 1.0]);
        assert_eq!(x, vec![2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_pool_picks_max() {
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let (out, oh, ow) = max_pool2d(&input, 1, 2, 2, 2, 2);
        assert_eq!((oh, ow), (1, 1));
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let input = vec![1.0, 3.0, 10.0, 20.0];
        assert_eq!(global_avg_pool(&input, 2, 2), vec![2.0, 15.0]);
    }

    #[test]
    fn relu_and_gelu_signs() {
        let mut x = vec![-1.0, 0.0, 2.0];
        relu(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let mut g = vec![-10.0, 0.0, 10.0];
        gelu(&mut g);
        assert!(g[0].abs() < 1e-3); // large negatives → ~0
        assert_eq!(g[1], 0.0);
        assert!((g[2] - 10.0).abs() < 1e-3); // large positives → identity
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn gemm_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8,
                              seed in any::<u64>()) {
            let mut s = seed;
            let mut next = || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 100.0
            };
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut c = vec![0.0; m * n];
            gemm(&a, &b, &mut c, m, k, n);
            let expect = gemm_naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&expect) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }
    }
}
