//! Graph IR: operators, shape inference, and FLOPs accounting.
//!
//! FLOPs are counted as multiply–accumulates (1 MAC = 1 FLOP), the
//! convention used by `thop`/`fvcore` and by the model cards the paper's
//! Fig 4 cites (ViT-Base/16 at 224² ≈ 17.6 GFLOPs under this convention).

use crate::DnnError;

/// Activation/tensor shape flowing between graph nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// Image activations `[channels, height, width]` (batch implicit).
    Chw(usize, usize, usize),
    /// Token activations `[tokens, dim]`.
    Tokens(usize, usize),
    /// Flat feature vector `[dim]`.
    Vec(usize),
}

impl Shape {
    /// Total element count.
    pub fn numel(&self) -> usize {
        match *self {
            Shape::Chw(c, h, w) => c * h * w,
            Shape::Tokens(l, d) => l * d,
            Shape::Vec(d) => d,
        }
    }
}

/// A graph operator. Convolution-style ops infer their input channel count
/// from the incoming shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// The graph input; `shape` fixes the expected activation layout.
    Input(Shape),
    /// 2-D convolution.
    Conv2d {
        /// Output channels.
        out_c: usize,
        /// Square kernel side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        pad: usize,
    },
    /// Fully connected layer to `out` features (applied to the last dim).
    Linear {
        /// Output features.
        out: usize,
    },
    /// Layer normalization over the last dimension (tokens or vectors).
    LayerNorm,
    /// Inference-mode batch normalization (folded scale/shift per channel).
    BatchNorm,
    /// ReLU activation.
    Relu,
    /// GELU activation.
    Gelu,
    /// Max pooling.
    MaxPool {
        /// Window side.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling `[C,H,W] → [C]`.
    GlobalAvgPool,
    /// Patch embedding `[C,H,W] → [L+1, D]` with a prepended class token
    /// and learned positional embeddings.
    Patchify {
        /// Patch side in pixels.
        patch: usize,
        /// Embedding dimension.
        embed: usize,
    },
    /// Multi-head self-attention block (pre-norm, qkv + proj), residual
    /// handled externally via [`Op::Add`].
    MultiHeadAttention {
        /// Number of attention heads.
        heads: usize,
    },
    /// Transformer MLP block: `Linear(hidden) → GELU → Linear(dim)`.
    Mlp {
        /// Hidden width.
        hidden: usize,
    },
    /// Element-wise sum of two inputs (residual connection).
    Add,
    /// Selects one token `[L, D] → [D]`.
    TakeToken {
        /// Token index (0 = class token after [`Op::Patchify`]).
        index: usize,
    },
    /// Softmax over the last dimension.
    Softmax,
}

impl Op {
    /// Output shape given the input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the operator cannot accept
    /// the inputs (wrong rank, wrong arity, non-divisible dims).
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape, DnnError> {
        let one = |idx: usize| -> Result<&Shape, DnnError> {
            inputs.get(idx).copied().ok_or(DnnError::ShapeMismatch {
                op: self.name(),
                detail: "missing input".into(),
            })
        };
        let fail = |detail: &str| DnnError::ShapeMismatch {
            op: self.name(),
            detail: detail.into(),
        };
        match self {
            Op::Input(shape) => Ok(shape.clone()),
            Op::Conv2d {
                out_c,
                k,
                stride,
                pad,
            } => match one(0)? {
                Shape::Chw(_, h, w) => {
                    let hh = h + 2 * pad;
                    let ww = w + 2 * pad;
                    if hh < *k || ww < *k {
                        return Err(fail("kernel larger than padded input"));
                    }
                    Ok(Shape::Chw(
                        *out_c,
                        (hh - k) / stride + 1,
                        (ww - k) / stride + 1,
                    ))
                }
                _ => Err(fail("conv2d expects CHW input")),
            },
            Op::Linear { out } => match one(0)? {
                Shape::Tokens(l, _) => Ok(Shape::Tokens(*l, *out)),
                Shape::Vec(_) => Ok(Shape::Vec(*out)),
                Shape::Chw(..) => Err(fail("linear expects tokens or vector input")),
            },
            Op::LayerNorm | Op::Softmax | Op::Gelu | Op::Relu | Op::BatchNorm => {
                Ok(one(0)?.clone())
            }
            Op::MaxPool { k, stride } => match one(0)? {
                Shape::Chw(c, h, w) => {
                    if h < k || w < k {
                        return Err(fail("pool window larger than input"));
                    }
                    Ok(Shape::Chw(*c, (h - k) / stride + 1, (w - k) / stride + 1))
                }
                _ => Err(fail("max_pool expects CHW input")),
            },
            Op::GlobalAvgPool => match one(0)? {
                Shape::Chw(c, _, _) => Ok(Shape::Vec(*c)),
                _ => Err(fail("global_avg_pool expects CHW input")),
            },
            Op::Patchify { patch, embed } => match one(0)? {
                Shape::Chw(_, h, w) => {
                    if h % patch != 0 || w % patch != 0 {
                        return Err(fail("image not divisible by patch size"));
                    }
                    Ok(Shape::Tokens((h / patch) * (w / patch) + 1, *embed))
                }
                _ => Err(fail("patchify expects CHW input")),
            },
            Op::MultiHeadAttention { heads } => match one(0)? {
                Shape::Tokens(l, d) => {
                    if d % heads != 0 {
                        return Err(fail("dim not divisible by heads"));
                    }
                    Ok(Shape::Tokens(*l, *d))
                }
                _ => Err(fail("attention expects token input")),
            },
            Op::Mlp { .. } => match one(0)? {
                Shape::Tokens(l, d) => Ok(Shape::Tokens(*l, *d)),
                _ => Err(fail("mlp expects token input")),
            },
            Op::Add => {
                let a = one(0)?;
                let b = one(1)?;
                if a != b {
                    return Err(fail("residual operands differ in shape"));
                }
                Ok(a.clone())
            }
            Op::TakeToken { index } => match one(0)? {
                Shape::Tokens(l, d) => {
                    if index >= l {
                        return Err(fail("token index out of range"));
                    }
                    Ok(Shape::Vec(*d))
                }
                _ => Err(fail("take_token expects token input")),
            },
        }
    }

    /// MAC count for this operator given input/output shapes.
    pub fn flops(&self, input: &Shape, output: &Shape) -> u64 {
        match (self, input, output) {
            (Op::Input(_), _, _) => 0,
            (Op::Conv2d { out_c, k, .. }, Shape::Chw(in_c, _, _), Shape::Chw(_, oh, ow)) => {
                (oh * ow * out_c * in_c * k * k) as u64
            }
            (Op::Linear { out }, Shape::Tokens(l, d), _) => (l * d * out) as u64,
            (Op::Linear { out }, Shape::Vec(d), _) => (d * out) as u64,
            (Op::MaxPool { k, .. }, _, Shape::Chw(c, oh, ow)) => (c * oh * ow * k * k) as u64,
            (Op::Patchify { patch, embed }, Shape::Chw(c, _, _), Shape::Tokens(l, _)) => {
                ((l - 1) * embed * c * patch * patch) as u64
            }
            (Op::MultiHeadAttention { .. }, Shape::Tokens(l, d), _) => {
                // qkv + two L×L products + output projection
                (l * d * 3 * d + 2 * l * l * d + l * d * d) as u64
            }
            (Op::Mlp { hidden }, Shape::Tokens(l, d), _) => (2 * l * d * hidden) as u64,
            // Normalizations, activations, adds, pools: one op per element.
            _ => output.numel() as u64,
        }
    }

    /// Parameter count for this operator given the input shape.
    pub fn params(&self, input: &Shape) -> u64 {
        match (self, input) {
            (Op::Conv2d { out_c, k, .. }, Shape::Chw(in_c, _, _)) => {
                (out_c * in_c * k * k + out_c) as u64
            }
            (Op::Linear { out }, Shape::Tokens(_, d)) | (Op::Linear { out }, Shape::Vec(d)) => {
                (out * d + out) as u64
            }
            (Op::LayerNorm, s) | (Op::BatchNorm, s) => {
                let d = match s {
                    Shape::Chw(c, _, _) => *c,
                    Shape::Tokens(_, d) => *d,
                    Shape::Vec(d) => *d,
                };
                2 * d as u64
            }
            (Op::Patchify { patch, embed }, Shape::Chw(c, h, w)) => {
                let l = (h / patch) * (w / patch) + 1;
                (embed * c * patch * patch + embed + l * embed + embed) as u64
            }
            (Op::MultiHeadAttention { .. }, Shape::Tokens(_, d)) => (4 * d * d + 4 * d) as u64,
            (Op::Mlp { hidden }, Shape::Tokens(_, d)) => (2 * d * hidden + hidden + d) as u64,
            _ => 0,
        }
    }

    /// Short operator name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Input(_) => "input",
            Op::Conv2d { .. } => "conv2d",
            Op::Linear { .. } => "linear",
            Op::LayerNorm => "layer_norm",
            Op::BatchNorm => "batch_norm",
            Op::Relu => "relu",
            Op::Gelu => "gelu",
            Op::MaxPool { .. } => "max_pool",
            Op::GlobalAvgPool => "global_avg_pool",
            Op::Patchify { .. } => "patchify",
            Op::MultiHeadAttention { .. } => "attention",
            Op::Mlp { .. } => "mlp",
            Op::Add => "add",
            Op::TakeToken { .. } => "take_token",
            Op::Softmax => "softmax",
        }
    }
}

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// A node: an operator applied to earlier nodes.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Input node ids (topologically earlier).
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Shape,
}

/// A topologically ordered computation graph with shape inference done at
/// construction.
///
/// # Examples
///
/// ```
/// use vserve_dnn::graph::{Graph, Op, Shape};
///
/// # fn main() -> Result<(), vserve_dnn::DnnError> {
/// let mut g = Graph::new(Shape::Chw(3, 32, 32));
/// let c = g.push(Op::Conv2d { out_c: 8, k: 3, stride: 1, pad: 1 }, &[g.input()])?;
/// let r = g.push(Op::Relu, &[c])?;
/// let p = g.push(Op::GlobalAvgPool, &[r])?;
/// let out = g.push(Op::Linear { out: 10 }, &[p])?;
/// assert_eq!(g.shape(out), &Shape::Vec(10));
/// assert!(g.flops() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates a graph with a single input node of the given shape.
    pub fn new(input: Shape) -> Self {
        Graph {
            nodes: vec![Node {
                shape: input.clone(),
                op: Op::Input(input),
                inputs: Vec::new(),
            }],
        }
    }

    /// The input node id.
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// Appends an operator consuming `inputs`, returning its node id.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if shape inference fails, or
    /// [`DnnError::BadNodeRef`] if an input id is not an earlier node.
    pub fn push(&mut self, op: Op, inputs: &[NodeId]) -> Result<NodeId, DnnError> {
        for &NodeId(i) in inputs {
            if i >= self.nodes.len() {
                return Err(DnnError::BadNodeRef(i));
            }
        }
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|&NodeId(i)| &self.nodes[i].shape)
            .collect();
        let shape = op.infer_shape(&shapes)?;
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
            shape,
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Output shape of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.nodes[id.0].shape
    }

    /// The final node (the model output).
    pub fn output(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// Total MACs of one forward pass at the graph's input resolution.
    pub fn flops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let input = n
                    .inputs
                    .first()
                    .map(|&NodeId(i)| &self.nodes[i].shape)
                    .unwrap_or(&n.shape);
                n.op.flops(input, &n.shape)
            })
            .sum()
    }

    /// Total learnable parameters.
    pub fn params(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let input = n
                    .inputs
                    .first()
                    .map(|&NodeId(i)| &self.nodes[i].shape)
                    .unwrap_or(&n.shape);
                n.op.params(input)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let op = Op::Conv2d {
            out_c: 16,
            k: 3,
            stride: 2,
            pad: 1,
        };
        let out = op.infer_shape(&[&Shape::Chw(3, 224, 224)]).unwrap();
        assert_eq!(out, Shape::Chw(16, 112, 112));
    }

    #[test]
    fn conv_flops_formula() {
        let op = Op::Conv2d {
            out_c: 64,
            k: 7,
            stride: 2,
            pad: 3,
        };
        let input = Shape::Chw(3, 224, 224);
        let output = op.infer_shape(&[&input]).unwrap();
        assert_eq!(output, Shape::Chw(64, 112, 112));
        // ResNet stem: 112·112·64·3·7·7 = 118,013,952 MACs.
        assert_eq!(op.flops(&input, &output), 118_013_952);
    }

    #[test]
    fn attention_flops_formula() {
        let op = Op::MultiHeadAttention { heads: 12 };
        let s = Shape::Tokens(197, 768);
        let flops = op.flops(&s, &s);
        let expect = 197 * 768 * 3 * 768 + 2 * 197 * 197 * 768 + 197 * 768 * 768;
        assert_eq!(flops, expect as u64);
    }

    #[test]
    fn patchify_token_count() {
        let op = Op::Patchify {
            patch: 16,
            embed: 768,
        };
        let out = op.infer_shape(&[&Shape::Chw(3, 224, 224)]).unwrap();
        assert_eq!(out, Shape::Tokens(197, 768));
    }

    #[test]
    fn add_requires_matching_shapes() {
        let op = Op::Add;
        let a = Shape::Tokens(5, 8);
        let b = Shape::Tokens(5, 9);
        assert!(op.infer_shape(&[&a, &a]).is_ok());
        assert!(op.infer_shape(&[&a, &b]).is_err());
    }

    #[test]
    fn graph_rejects_forward_references() {
        let mut g = Graph::new(Shape::Vec(4));
        let bad = g.push(Op::Relu, &[NodeId(7)]);
        assert!(matches!(bad, Err(DnnError::BadNodeRef(7))));
    }

    #[test]
    fn graph_flops_accumulate() {
        let mut g = Graph::new(Shape::Vec(10));
        let l1 = g.push(Op::Linear { out: 20 }, &[g.input()]).unwrap();
        let _l2 = g.push(Op::Linear { out: 5 }, &[l1]).unwrap();
        assert_eq!(g.flops(), 10 * 20 + 20 * 5);
        assert_eq!(g.params(), (10 * 20 + 20) + (20 * 5 + 5));
    }

    #[test]
    fn take_token_bounds() {
        let op = Op::TakeToken { index: 5 };
        assert!(op.infer_shape(&[&Shape::Tokens(5, 4)]).is_err());
        assert!(op.infer_shape(&[&Shape::Tokens(6, 4)]).is_ok());
    }
}
