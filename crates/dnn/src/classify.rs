//! Classification post-processing helpers.

use vserve_tensor::Tensor;

/// One classification result: class index and score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Class index in the model's output order.
    pub class: usize,
    /// Raw score (probability if the model ends in softmax).
    pub score: f32,
}

/// Returns the `k` highest-scoring classes of a flat output tensor,
/// ordered best-first (ties by lower class index).
///
/// # Examples
///
/// ```
/// use vserve_dnn::classify::top_k;
/// use vserve_tensor::Tensor;
///
/// # fn main() -> Result<(), vserve_tensor::TensorError> {
/// let logits = Tensor::from_vec(&[1, 4], vec![0.1, 0.7, 0.15, 0.05])?;
/// let top = top_k(&logits, 2);
/// assert_eq!(top[0].class, 1);
/// assert_eq!(top[1].class, 2);
/// # Ok(())
/// # }
/// ```
pub fn top_k(output: &Tensor, k: usize) -> Vec<Prediction> {
    let mut preds: Vec<Prediction> = output
        .as_slice()
        .iter()
        .enumerate()
        .map(|(class, &score)| Prediction { class, score })
        .collect();
    preds.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.class.cmp(&b.class)));
    preds.truncate(k);
    preds
}

/// Converts raw logits to probabilities with a numerically stable softmax.
///
/// # Examples
///
/// ```
/// use vserve_dnn::classify::softmax;
/// use vserve_tensor::Tensor;
///
/// # fn main() -> Result<(), vserve_tensor::TensorError> {
/// let probs = softmax(&Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0])?);
/// let sum: f32 = probs.as_slice().iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    let data = out.as_mut_slice();
    let max = data.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for v in data.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in data.iter_mut() {
        *v /= sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_and_truncates() {
        let t = Tensor::from_vec(&[1, 5], vec![0.1, 0.5, 0.3, 0.05, 0.05]).unwrap();
        let top = top_k(&t, 3);
        assert_eq!(
            top.iter().map(|p| p.class).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        assert_eq!(top_k(&t, 100).len(), 5);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let t = Tensor::from_vec(&[1, 3], vec![0.4, 0.2, 0.4]).unwrap();
        let top = top_k(&t, 2);
        assert_eq!(top[0].class, 0);
        assert_eq!(top[1].class, 2);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(&[1, 2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax(&t);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!(p.as_slice()[1] > p.as_slice()[0]);
    }

    #[test]
    fn softmax_preserves_order() {
        let t = Tensor::from_vec(&[1, 4], vec![-2.0, 0.0, 3.0, 1.0]).unwrap();
        let p = softmax(&t);
        assert_eq!(top_k(&t, 4)[0].class, top_k(&p, 4)[0].class);
    }
}
