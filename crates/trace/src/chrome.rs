//! chrome://tracing / Perfetto exporter.
//!
//! Renders a [`TraceSnapshot`](crate::TraceSnapshot) as the Trace Event
//! Format JSON that `about:tracing` and <https://ui.perfetto.dev> load
//! directly:
//!
//! * one metadata (`"ph":"M"`) `thread_name` event per registered worker
//!   thread, so each ring gets its own named track;
//! * one complete (`"ph":"X"`) event per span, `ts`/`dur` in
//!   microseconds;
//! * flow arrows (`"ph":"s"`/`"t"`) stitching each request's spans
//!   across threads (flow id = request id) and each batch's inference
//!   slices together (flow id = `BATCH_FLOW_BIT | batch_id`, so batch
//!   flows can never collide with request flows).
//!
//! The exporter is total: timestamps were clamped at record time, and it
//! re-checks finiteness here, so the output never contains `NaN`,
//! `Infinity`, or a negative `dur`. [`validate_json`] is a minimal
//! strict JSON parser used by the test suite (and usable by callers) to
//! prove every export is well-formed without a JSON dependency.

use crate::{Span, TraceSnapshot};

/// High bit marking batch flow ids so they can never collide with
/// request-id flows in the same document.
pub const BATCH_FLOW_BIT: u64 = 1 << 63;

/// Render a snapshot as a chrome://tracing-loadable JSON document.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(256 + snap.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    for t in &snap.threads {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        push_u64(&mut out, t.id as u64);
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, &t.name);
        out.push_str("}}");
    }

    for s in &snap.spans {
        if !s.t_start.is_finite() || !s.t_end.is_finite() {
            continue;
        }
        sep(&mut out, &mut first);
        push_complete_event(&mut out, s);
    }

    // Flow arrows: per-request chains across threads, then per-batch
    // chains over inference slices. Spans arrive time-sorted, so
    // consecutive members of a chain are already in order.
    push_flows(&mut out, &mut first, snap, FlowKind::Request);
    push_flows(&mut out, &mut first, snap, FlowKind::Batch);

    out.push_str("]}");
    out
}

enum FlowKind {
    Request,
    Batch,
}

fn push_flows(out: &mut String, first: &mut bool, snap: &TraceSnapshot, kind: FlowKind) {
    // Collect the distinct chain keys, then walk each chain in snapshot
    // (time) order emitting start/step arrows anchored at span starts.
    let key = |s: &Span| -> Option<u64> {
        match kind {
            FlowKind::Request => (s.request_id != 0).then_some(s.request_id),
            FlowKind::Batch => (s.batch_id != 0).then_some(s.batch_id),
        }
    };
    let mut keys: Vec<u64> = snap.spans.iter().filter_map(key).collect();
    keys.sort_unstable();
    keys.dedup();
    for k in keys {
        let chain: Vec<&Span> = snap
            .spans
            .iter()
            .filter(|s| key(s) == Some(k) && s.t_start.is_finite())
            .collect();
        if chain.len() < 2 {
            continue;
        }
        let flow_id = match kind {
            FlowKind::Request => k,
            FlowKind::Batch => BATCH_FLOW_BIT | k,
        };
        for (i, s) in chain.iter().enumerate() {
            sep(out, first);
            let ph = if i == 0 { "s" } else { "t" };
            out.push_str("{\"name\":");
            push_json_string(
                out,
                match kind {
                    FlowKind::Request => "request",
                    FlowKind::Batch => "batch",
                },
            );
            out.push_str(",\"cat\":\"flow\",\"ph\":\"");
            out.push_str(ph);
            out.push_str("\",\"id\":");
            push_u64(out, flow_id);
            out.push_str(",\"pid\":1,\"tid\":");
            push_u64(out, s.thread as u64);
            out.push_str(",\"ts\":");
            push_micros(out, s.t_start);
            out.push('}');
        }
    }
}

fn push_complete_event(out: &mut String, s: &Span) {
    out.push_str("{\"name\":");
    push_json_string(out, s.stage);
    out.push_str(",\"cat\":\"vserve\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    push_u64(out, s.thread as u64);
    out.push_str(",\"ts\":");
    push_micros(out, s.t_start);
    out.push_str(",\"dur\":");
    push_micros(out, (s.t_end - s.t_start).max(0.0));
    out.push_str(",\"args\":{\"request_id\":");
    push_u64(out, s.request_id);
    out.push_str(",\"batch_id\":");
    push_u64(out, s.batch_id);
    out.push_str(",\"bytes\":");
    push_u64(out, s.bytes);
    out.push_str("}}");
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Seconds → microseconds with fixed 3-decimal precision (chrome traces
/// use µs). Inputs are finite and non-negative by the callers' checks.
fn push_micros(out: &mut String, secs: f64) {
    use std::fmt::Write;
    let _ = write!(out, "{:.3}", secs * 1e6);
}

/// Minimal JSON string escaper (quotes, backslash, control chars).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Strict minimal JSON parser: accepts exactly one JSON value (object,
/// array, string, number, `true`/`false`/`null`) spanning the whole
/// input. Returns a byte offset + message on the first violation.
///
/// This exists so the test suite can prove exports are well-formed
/// without pulling in a JSON dependency; it intentionally rejects the
/// things real parsers reject (trailing commas, bare NaN/Infinity,
/// unescaped control characters, trailing garbage).
pub fn validate_json(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "unescaped control char in string at byte {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {pos}", pos = *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {pos}", pos = *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadInfo, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let tr = Tracer::with_capacity(64);
        let a = tr.register("preproc-0");
        let b = tr.register("inference-0");
        a.span_at(1, "1-queue", 0.000_010, 0.000_050, 0, 4096);
        a.span_at(1, "2-preproc", 0.000_050, 0.001_050, 0, 4096);
        a.span_at(1, "cache-miss", 0.000_050, 0.000_050, 0, 0);
        b.span_at(1, "4-inference", 0.001_100, 0.002_100, 7, 0);
        b.span_at(2, "4-inference", 0.002_100, 0.003_100, 7, 0);
        b.span_at(0, "respond", 0.003_100, 0.003_150, 7, 2);
        tr.snapshot()
    }

    #[test]
    fn export_is_valid_json_with_expected_structure() {
        let json = chrome_trace_json(&sample_snapshot());
        validate_json(&json).expect("export must be strict JSON");
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"preproc-0\""));
        assert!(json.contains("\"inference-0\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Per-request flow + per-batch flow arrows both present.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"t\""));
        assert!(json.contains(&format!("\"id\":{}", BATCH_FLOW_BIT | 7)));
        assert!(!json.contains("NaN"));
        assert!(!json.contains("\"dur\":-"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let json = chrome_trace_json(&TraceSnapshot::empty());
        validate_json(&json).expect("empty export must be valid");
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn string_escaping_survives_hostile_thread_names() {
        let snap = TraceSnapshot {
            spans: Vec::new(),
            threads: vec![ThreadInfo {
                id: 0,
                name: "we\"ird\\name\nwith\tctrl\u{1}".to_string(),
            }],
            dropped: 0,
        };
        let json = chrome_trace_json(&snap);
        validate_json(&json).expect("escaped output must be valid JSON");
    }

    #[test]
    fn validator_accepts_and_rejects_correctly() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u0041b\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            " { \"x\" : 0.25 } ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "NaN",
            "Infinity",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "{} trailing",
            "\"ctrl\u{1}char\"",
        ] {
            assert!(validate_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Arbitrary-ish span sets, including hostile timestamps: the
        // exporter must always emit strict JSON with no NaN and no
        // negative durations.
        fn arb_time() -> impl Strategy<Value = f64> {
            prop_oneof![
                (0u64..2_000_000).prop_map(|us| us as f64 * 1e-6),
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                Just(-1.0),
                Just(0.0),
            ]
        }

        proptest! {
            #[test]
            fn export_never_emits_nan_or_negative_durations(
                times in proptest::collection::vec((arb_time(), arb_time()), 0..40),
                ids in proptest::collection::vec(0u64..6, 0..40),
            ) {
                let tr = Tracer::with_capacity(64);
                let h0 = tr.register("t0");
                let h1 = tr.register("t1");
                for (i, (t0, t1)) in times.iter().enumerate() {
                    let id = ids.get(i).copied().unwrap_or(0);
                    let h = if i % 2 == 0 { &h0 } else { &h1 };
                    h.span_at(id, "s", *t0, *t1, id / 2, i as u64);
                }
                let snap = tr.snapshot();
                for s in &snap.spans {
                    prop_assert!(s.t_start.is_finite() && s.t_end.is_finite());
                    prop_assert!(s.t_end >= s.t_start);
                }
                let json = chrome_trace_json(&snap);
                prop_assert!(validate_json(&json).is_ok(), "invalid JSON: {}", json);
                prop_assert!(!json.contains("NaN"));
                prop_assert!(!json.contains("Infinity"));
                prop_assert!(!json.contains("\"dur\":-"));
                prop_assert!(!json.contains("\"ts\":-"));
            }
        }
    }
}
