//! Plain-text metrics exposition builder.
//!
//! Renders counters, gauges, and histogram quantiles in the widely
//! scraped `name{label="value"} 1.23` text format (one sample per line,
//! `# HELP`/`# TYPE` comment headers). The net front-end serves this
//! document on the wire protocol's `VRM1` scrape frame, so a running
//! `NetServer` can be polled by anything that speaks the framed
//! protocol.
//!
//! The builder is total: non-finite values are sanitized to `0` (the
//! exposition never contains `NaN`/`inf`), metric names are restricted
//! to `[a-zA-Z0-9_:]` (other bytes become `_`), and label values are
//! escaped per the format's rules (`\\`, `\"`, `\n`).

/// Incremental builder for a plain-text metrics exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Append `# HELP` + `# TYPE` headers for a metric family.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        push_name(&mut self.out, name);
        self.out.push(' ');
        // Help text is free-form but must stay on one line.
        for c in help.chars() {
            match c {
                '\n' | '\r' => self.out.push(' '),
                '\\' => self.out.push_str("\\\\"),
                c => self.out.push(c),
            }
        }
        self.out.push_str("\n# TYPE ");
        push_name(&mut self.out, name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// Append an unlabeled integer sample (counters).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        push_name(&mut self.out, name);
        self.out.push(' ');
        push_u64(&mut self.out, value);
        self.out.push('\n');
        self
    }

    /// Append an unlabeled float sample (gauges).
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.sample(name, &[], value)
    }

    /// Append a labeled float sample, e.g.
    /// `latency_seconds{quantile="0.99"} 0.004`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        push_name(&mut self.out, name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                push_name(&mut self.out, k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        push_f64(&mut self.out, value);
        self.out.push('\n');
        self
    }

    /// Finish the document. Ends with a trailing newline (scrapers treat
    /// the final `\n` as end-of-document).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Metric/label names: `[a-zA-Z0-9_:]`, anything else mapped to `_`.
fn push_name(out: &mut String, name: &str) {
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Sample values: finite shortest-round-trip formatting; non-finite
/// inputs sanitized to 0 so the document never carries NaN/inf.
fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    let v = if v.is_finite() { v } else { 0.0 };
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_is_line_oriented() {
        let mut e = Exposition::new();
        e.header("vserve_requests_total", "counter", "Completed requests.")
            .counter("vserve_requests_total", 42);
        e.header("vserve_latency_seconds", "summary", "End-to-end latency.")
            .sample("vserve_latency_seconds", &[("quantile", "0.5")], 0.00125)
            .sample("vserve_latency_seconds", &[("quantile", "0.99")], 0.004);
        let doc = e.finish();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines[0], "# HELP vserve_requests_total Completed requests.");
        assert_eq!(lines[1], "# TYPE vserve_requests_total counter");
        assert_eq!(lines[2], "vserve_requests_total 42");
        assert_eq!(lines[5], "vserve_latency_seconds{quantile=\"0.5\"} 0.00125");
        assert_eq!(lines[6], "vserve_latency_seconds{quantile=\"0.99\"} 0.004");
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn hostile_names_labels_and_values_are_sanitized() {
        let mut e = Exposition::new();
        e.sample(
            "bad name-with.dots",
            &[("sta ge", "quo\"te\\back\nline")],
            f64::NAN,
        );
        e.gauge("inf_gauge", f64::INFINITY);
        let doc = e.finish();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(
            lines[0],
            "bad_name_with_dots{sta_ge=\"quo\\\"te\\\\back\\nline\"} 0"
        );
        assert_eq!(lines[1], "inf_gauge 0");
        assert!(!doc.contains("NaN"));
        assert!(!doc.contains("inf "));
    }

    #[test]
    fn multiple_labels_and_integer_valued_gauges() {
        let mut e = Exposition::new();
        e.sample(
            "vserve_stage_seconds_total",
            &[("stage", "2-preproc"), ("path", "live")],
            1.5,
        );
        let doc = e.finish();
        assert_eq!(
            doc,
            "vserve_stage_seconds_total{stage=\"2-preproc\",path=\"live\"} 1.5\n"
        );
    }
}
