//! Low-overhead request-level tracing for the serving stack.
//!
//! The paper this repo reproduces is a *measurement study*: its whole
//! contribution is visibility into where serving time goes. Aggregates
//! (`ServingSummary`, `StageBreakdown`) answer "how much on average";
//! this crate answers "when, on which thread, for which request" — a
//! per-request span timeline cheap enough to leave on in production.
//!
//! # Span model
//!
//! A [`Span`] is a half-open interval `[t_start, t_end)` in seconds since
//! the tracer's epoch, tagged with the request id it serves, the stage
//! name (the same `stages::*` constants the breakdown uses, so span sums
//! reconcile with reported stage totals), the recording thread, the batch
//! it rode in (0 = none), and a byte count (payload sizes). An *event* is
//! a zero-duration span (`t_end == t_start`) — cache hits, coalesce
//! parks, ingress arrivals.
//!
//! # Architecture: per-thread bounded rings
//!
//! Each worker thread [`Tracer::register`]s once and gets a
//! [`TraceHandle`] that owns an `Arc` to that thread's ring. Recording
//! locks only the thread's own ring mutex — never contended in steady
//! state, since only the owning thread records to it and snapshots are
//! rare. The ring is a preallocated `Vec<Span>` that *never reallocates*:
//! once full, new spans overwrite the oldest (`dropped` counts evictions)
//! — steady-state recording is allocation-free, pinned by the same
//! allocation-counting idiom `compute::Scratch` uses.
//!
//! # Disabled cost
//!
//! A disabled tracer is `Tracer { inner: None }`; every recording call
//! reduces to one branch on that `Option` and returns. Building with the
//! `off` cargo feature makes every *constructor* return the disabled
//! tracer, so the recording paths are statically dead and whole-program
//! optimization can drop them entirely — the no-op build has 0% overhead
//! by construction.
//!
//! # Exporters
//!
//! [`chrome::chrome_trace_json`] renders a snapshot as a
//! chrome://tracing / Perfetto-loadable JSON document (one track per
//! worker thread, per-request and per-batch flow arrows);
//! [`expose::Exposition`] builds the plain-text counter/quantile
//! exposition served over the wire protocol's `VRM1` scrape frame.
//!
//! Timestamps are clamped on record: non-finite inputs are discarded,
//! `t_start` is floored at 0, and `t_end` is floored at `t_start`, so no
//! export path can ever emit NaN, negative timestamps, or negative
//! durations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod expose;

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Env var that enables tracing at startup (`1`, `true`, or `on`).
pub const TRACE_ENV: &str = "VSERVE_TRACE";
/// Env var overriding the per-thread ring capacity, in spans.
pub const TRACE_BUF_ENV: &str = "VSERVE_TRACE_BUF";
/// Default per-thread ring capacity (spans) when `VSERVE_TRACE_BUF` is
/// unset: 64 Ki spans ≈ 3.5 MiB per worker thread.
pub const DEFAULT_BUF_SPANS: usize = 65_536;

/// One timed interval (or zero-duration event) on one thread.
///
/// Times are seconds since the owning tracer's epoch; invariant
/// (enforced on record): both finite, `t_end >= t_start`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Request this span serves; 0 when not tied to a single request
    /// (e.g. a whole-batch respond span).
    pub request_id: u64,
    /// Stage or event name. Stage spans use the canonical
    /// `vserve_server::stages` constants so per-stage span sums reconcile
    /// with `StageBreakdown` totals.
    pub stage: &'static str,
    /// Start, seconds since the tracer epoch.
    pub t_start: f64,
    /// End, seconds since the tracer epoch; `== t_start` for events.
    pub t_end: f64,
    /// Registration id of the recording thread (see
    /// [`TraceSnapshot::threads`]).
    pub thread: u32,
    /// Batch this span rode in; 0 = not batched.
    pub batch_id: u64,
    /// Bytes associated with the span (payload sizes); 0 = n/a.
    pub bytes: u64,
    /// Tenant lane this span serves on a multi-tenant server; 0 =
    /// untagged (single-tenant servers and infrastructure spans). Lane
    /// `i` records as `i + 1`, so per-request timelines can attribute
    /// queueing delay to the co-tenant batch occupying the backend.
    pub tenant: u32,
}

impl Span {
    /// Span duration in seconds (never negative by construction).
    pub fn duration(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }

    /// True for zero-duration marker events (cache hits, arrivals).
    pub fn is_event(&self) -> bool {
        self.t_end <= self.t_start
    }
}

/// Fixed-capacity span storage: overwrites the oldest entry when full and
/// never reallocates after construction.
struct Ring {
    spans: Vec<Span>,
    /// Oldest entry once the ring has wrapped; insertion point of the
    /// next overwrite.
    head: usize,
    dropped: u64,
    /// Allocation count for the steady-state allocation-free test (the
    /// `Scratch` idiom): 1 after construction, and it must stay 1.
    allocations: u64,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        Ring {
            spans: Vec::with_capacity(cap.max(1)),
            head: 0,
            dropped: 0,
            allocations: 1,
        }
    }

    fn push(&mut self, s: Span) {
        if self.spans.len() < self.spans.capacity() {
            self.spans.push(s);
        } else {
            self.spans[self.head] = s;
            self.head = (self.head + 1) % self.spans.len();
            self.dropped += 1;
        }
    }

    /// Spans oldest-first (unwraps the ring).
    fn ordered(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.head..]);
        out.extend_from_slice(&self.spans[..self.head]);
        out
    }
}

struct ThreadRing {
    id: u32,
    name: String,
    ring: Mutex<Ring>,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Handle to the tracing subsystem. Cheap to clone; a disabled tracer
/// (the default) records nothing and costs one branch per call site.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => {
                let threads = inner.threads.lock().map(|t| t.len()).unwrap_or(0);
                write!(
                    f,
                    "Tracer(enabled, {} threads, {} spans/thread)",
                    threads, inner.capacity
                )
            }
        }
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with an explicit per-thread ring capacity
    /// (clamped to ≥ 1 span). Under the `off` cargo feature this returns
    /// the disabled tracer instead.
    pub fn with_capacity(spans_per_thread: usize) -> Tracer {
        if cfg!(feature = "off") {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity: spans_per_thread.max(1),
                threads: Mutex::new(Vec::new()),
            })),
        }
    }

    /// An enabled tracer sized from `VSERVE_TRACE_BUF` (default
    /// [`DEFAULT_BUF_SPANS`]).
    pub fn enabled() -> Tracer {
        let cap = std::env::var(TRACE_BUF_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BUF_SPANS);
        Tracer::with_capacity(cap)
    }

    /// Enabled iff `VSERVE_TRACE` is `1`, `true`, or `on` (sized from
    /// `VSERVE_TRACE_BUF`); disabled otherwise.
    pub fn from_env() -> Tracer {
        match std::env::var(TRACE_ENV) {
            Ok(v) if matches!(v.trim(), "1" | "true" | "on") => Tracer::enabled(),
            _ => Tracer::disabled(),
        }
    }

    /// Whether this tracer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the tracer epoch (0.0 when disabled).
    pub fn secs(&self, t: Instant) -> f64 {
        match &self.inner {
            Some(inner) => t.saturating_duration_since(inner.epoch).as_secs_f64(),
            None => 0.0,
        }
    }

    /// Register a recording thread. Call once per worker thread; the
    /// returned handle is the only way to record spans. On a disabled
    /// tracer the handle is inert.
    pub fn register(&self, name: &str) -> TraceHandle {
        let Some(inner) = &self.inner else {
            return TraceHandle { inner: None };
        };
        let ring = {
            let mut threads = match inner.threads.lock() {
                Ok(t) => t,
                Err(poisoned) => poisoned.into_inner(),
            };
            let tr = Arc::new(ThreadRing {
                id: threads.len() as u32,
                name: name.to_string(),
                ring: Mutex::new(Ring::with_capacity(inner.capacity)),
            });
            threads.push(Arc::clone(&tr));
            tr
        };
        TraceHandle {
            inner: Some(HandleInner {
                epoch: inner.epoch,
                ring,
            }),
        }
    }

    /// Collect every thread's spans into one time-ordered snapshot.
    /// Non-destructive: rings keep their contents.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::empty();
        };
        let threads = match inner.threads.lock() {
            Ok(t) => t.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let mut spans = Vec::new();
        let mut infos = Vec::with_capacity(threads.len());
        let mut dropped = 0u64;
        for t in &threads {
            let ring = match t.ring.lock() {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            spans.extend(ring.ordered());
            dropped += ring.dropped;
            infos.push(ThreadInfo {
                id: t.id,
                name: t.name.clone(),
            });
        }
        spans.sort_by(|a, b| {
            a.t_start
                .total_cmp(&b.t_start)
                .then(a.t_end.total_cmp(&b.t_end))
                .then(a.thread.cmp(&b.thread))
                .then(a.request_id.cmp(&b.request_id))
        });
        TraceSnapshot {
            spans,
            threads: infos,
            dropped,
        }
    }
}

#[derive(Clone)]
struct HandleInner {
    epoch: Instant,
    ring: Arc<ThreadRing>,
}

/// Per-thread recording handle returned by [`Tracer::register`].
///
/// Recording locks only this thread's own ring — uncontended in steady
/// state — and never allocates once the ring is warm.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Option<HandleInner>,
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "TraceHandle(disabled)"),
            Some(h) => write!(f, "TraceHandle({:?})", h.ring.name),
        }
    }
}

impl TraceHandle {
    /// An inert handle (what a disabled tracer hands out).
    pub fn disabled() -> TraceHandle {
        TraceHandle { inner: None }
    }

    /// Whether records through this handle go anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the tracer epoch (0.0 when disabled).
    pub fn secs(&self, t: Instant) -> f64 {
        match &self.inner {
            Some(h) => t.saturating_duration_since(h.epoch).as_secs_f64(),
            None => 0.0,
        }
    }

    /// Record a span from two instants (untagged: tenant 0).
    pub fn span(
        &self,
        request_id: u64,
        stage: &'static str,
        start: Instant,
        end: Instant,
        batch_id: u64,
        bytes: u64,
    ) {
        self.span_tagged(0, request_id, stage, start, end, batch_id, bytes);
    }

    /// Record a span from two instants, tagged with a tenant lane
    /// (lane `i` is conventionally recorded as `i + 1`; 0 = untagged).
    #[allow(clippy::too_many_arguments)]
    pub fn span_tagged(
        &self,
        tenant: u32,
        request_id: u64,
        stage: &'static str,
        start: Instant,
        end: Instant,
        batch_id: u64,
        bytes: u64,
    ) {
        let Some(h) = &self.inner else { return };
        let t_start = start.saturating_duration_since(h.epoch).as_secs_f64();
        let t_end = end.saturating_duration_since(h.epoch).as_secs_f64();
        self.push(tenant, request_id, stage, t_start, t_end, batch_id, bytes);
    }

    /// Record a span from already-converted epoch seconds (see
    /// [`TraceHandle::secs`]). Non-finite timestamps are discarded;
    /// `t_end` is floored at `t_start`. Untagged (tenant 0).
    pub fn span_at(
        &self,
        request_id: u64,
        stage: &'static str,
        t_start: f64,
        t_end: f64,
        batch_id: u64,
        bytes: u64,
    ) {
        self.span_at_tagged(0, request_id, stage, t_start, t_end, batch_id, bytes);
    }

    /// [`span_at`](Self::span_at) with a tenant tag.
    #[allow(clippy::too_many_arguments)]
    pub fn span_at_tagged(
        &self,
        tenant: u32,
        request_id: u64,
        stage: &'static str,
        t_start: f64,
        t_end: f64,
        batch_id: u64,
        bytes: u64,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.push(tenant, request_id, stage, t_start, t_end, batch_id, bytes);
    }

    /// Record a zero-duration marker event (untagged: tenant 0).
    pub fn event(&self, request_id: u64, stage: &'static str, at: Instant, bytes: u64) {
        self.span(request_id, stage, at, at, 0, bytes);
    }

    /// Record a zero-duration marker event tagged with a tenant lane.
    pub fn event_tagged(
        &self,
        tenant: u32,
        request_id: u64,
        stage: &'static str,
        at: Instant,
        bytes: u64,
    ) {
        self.span_tagged(tenant, request_id, stage, at, at, 0, bytes);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        tenant: u32,
        request_id: u64,
        stage: &'static str,
        t_start: f64,
        t_end: f64,
        batch_id: u64,
        bytes: u64,
    ) {
        let Some(h) = &self.inner else { return };
        if !t_start.is_finite() || !t_end.is_finite() {
            return;
        }
        let t_start = t_start.max(0.0);
        let t_end = t_end.max(t_start);
        let mut ring = match h.ring.ring.lock() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.push(Span {
            request_id,
            stage,
            t_start,
            t_end,
            thread: h.ring.id,
            batch_id,
            bytes,
            tenant,
        });
    }

    /// `(len, capacity, dropped, allocations)` of this thread's ring —
    /// for the steady-state allocation-free tests. All zeros when
    /// disabled.
    pub fn ring_stats(&self) -> (usize, usize, u64, u64) {
        let Some(h) = &self.inner else {
            return (0, 0, 0, 0);
        };
        let ring = match h.ring.ring.lock() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        (
            ring.spans.len(),
            ring.spans.capacity(),
            ring.dropped,
            ring.allocations,
        )
    }
}

/// A registered recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Registration id (the `thread` field of spans it recorded).
    pub id: u32,
    /// Name given at registration ("preproc-0", "inference-1", ...).
    pub name: String,
}

/// A time-ordered copy of every ring, taken by [`Tracer::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans, sorted by `(t_start, t_end, thread, request_id)`.
    pub spans: Vec<Span>,
    /// Registered threads, in registration order.
    pub threads: Vec<ThreadInfo>,
    /// Spans evicted from full rings before this snapshot (0 means the
    /// timeline is complete).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// An empty snapshot (what a disabled tracer returns).
    pub fn empty() -> TraceSnapshot {
        TraceSnapshot::default()
    }

    /// Sum of span durations for one stage, in seconds. Per-stage totals
    /// reconcile with `StageBreakdown::total` for the canonical stages on
    /// a shed-free run (see DESIGN §11).
    pub fn stage_total(&self, stage: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(Span::duration)
            .sum()
    }

    /// Number of spans (including events) recorded for one stage.
    pub fn stage_count(&self, stage: &str) -> u64 {
        self.spans.iter().filter(|s| s.stage == stage).count() as u64
    }

    /// Distinct non-zero request ids present, ascending.
    pub fn request_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .spans
            .iter()
            .map(|s| s.request_id)
            .filter(|&id| id != 0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// All spans for one request, in snapshot (time) order.
    pub fn spans_for(&self, request_id: u64) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.request_id == request_id)
            .collect()
    }

    /// All spans tagged with one tenant lane, in snapshot (time) order.
    pub fn spans_for_tenant(&self, tenant: u32) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.tenant == tenant).collect()
    }

    /// Sum of span durations for one stage restricted to one tenant lane
    /// — the per-tenant view of [`stage_total`](Self::stage_total) used
    /// to attribute queueing delay to co-tenant interference.
    pub fn stage_total_tenant(&self, stage: &str, tenant: u32) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage && s.tenant == tenant)
            .map(Span::duration)
            .sum()
    }

    /// Number of spans for one stage restricted to one tenant lane.
    pub fn stage_count_tenant(&self, stage: &str, tenant: u32) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage && s.tenant == tenant)
            .count() as u64
    }

    /// Name of a recording thread, if registered.
    pub fn thread_name(&self, id: u32) -> Option<&str> {
        self.threads
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_is_fully_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        let h = tr.register("w0");
        assert!(!h.enabled());
        h.span(1, "x", Instant::now(), Instant::now(), 0, 0);
        h.event(1, "x", Instant::now(), 0);
        h.span_at(1, "x", 0.0, 1.0, 0, 0);
        assert_eq!(h.ring_stats(), (0, 0, 0, 0));
        let snap = tr.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.threads.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn ring_wraps_without_reallocating_and_counts_drops() {
        let tr = Tracer::with_capacity(8);
        let h = tr.register("w0");
        // 10x capacity: the ring must wrap, keep the newest 8, and never
        // grow past its initial allocation.
        for i in 0..80u64 {
            h.span_at(i, "s", i as f64, i as f64 + 0.5, 0, 0);
        }
        let (len, cap, dropped, allocations) = h.ring_stats();
        assert_eq!(len, 8);
        assert_eq!(cap, 8);
        assert_eq!(dropped, 72);
        assert_eq!(allocations, 1, "steady-state recording must not allocate");
        let snap = tr.snapshot();
        assert_eq!(snap.dropped, 72);
        let ids: Vec<u64> = snap.spans.iter().map(|s| s.request_id).collect();
        assert_eq!(ids, (72..80).collect::<Vec<_>>(), "newest spans survive");
    }

    #[test]
    fn snapshot_merges_threads_in_time_order() {
        let tr = Tracer::with_capacity(16);
        let a = tr.register("a");
        let b = tr.register("b");
        a.span_at(1, "s", 2.0, 3.0, 0, 0);
        b.span_at(2, "s", 1.0, 1.5, 0, 0);
        a.span_at(3, "s", 0.5, 0.6, 0, 0);
        let snap = tr.snapshot();
        let starts: Vec<f64> = snap.spans.iter().map(|s| s.t_start).collect();
        assert_eq!(starts, vec![0.5, 1.0, 2.0]);
        assert_eq!(snap.threads.len(), 2);
        assert_eq!(snap.thread_name(0), Some("a"));
        assert_eq!(snap.thread_name(1), Some("b"));
        assert_eq!(snap.spans[0].thread, 0);
        assert_eq!(snap.spans[1].thread, 1);
    }

    #[test]
    fn record_clamps_hostile_timestamps() {
        let tr = Tracer::with_capacity(16);
        let h = tr.register("w0");
        h.span_at(1, "nan", f64::NAN, 1.0, 0, 0);
        h.span_at(2, "inf", 0.0, f64::INFINITY, 0, 0);
        h.span_at(3, "backwards", 5.0, 2.0, 0, 0);
        h.span_at(4, "negative", -3.0, -1.0, 0, 0);
        let snap = tr.snapshot();
        // Non-finite inputs discarded entirely.
        assert_eq!(snap.spans.len(), 2);
        // Negative times floored at the epoch.
        assert_eq!(snap.spans[0].request_id, 4);
        assert_eq!((snap.spans[0].t_start, snap.spans[0].t_end), (0.0, 0.0));
        // Backwards interval floored to a zero-duration event.
        assert_eq!(snap.spans[1].request_id, 3);
        assert_eq!(snap.spans[1].duration(), 0.0);
        assert!(snap.spans[1].is_event());
    }

    #[test]
    fn instant_spans_round_trip_durations() {
        let tr = Tracer::with_capacity(16);
        let h = tr.register("w0");
        let start = Instant::now();
        let end = start + Duration::from_millis(5);
        h.span(7, "s", start, end, 3, 128);
        let snap = tr.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert!((s.duration() - 0.005).abs() < 1e-9);
        assert_eq!(s.batch_id, 3);
        assert_eq!(s.bytes, 128);
        assert_eq!(snap.stage_count("s"), 1);
        assert!((snap.stage_total("s") - 0.005).abs() < 1e-9);
    }

    #[test]
    fn snapshot_helpers_filter_by_request() {
        let tr = Tracer::with_capacity(16);
        let h = tr.register("w0");
        h.span_at(2, "a", 0.0, 1.0, 0, 0);
        h.span_at(1, "b", 1.0, 2.0, 0, 0);
        h.span_at(2, "c", 2.0, 3.0, 0, 0);
        h.span_at(0, "respond", 3.0, 4.0, 1, 0);
        let snap = tr.snapshot();
        assert_eq!(snap.request_ids(), vec![1, 2]);
        let stages: Vec<&str> = snap.spans_for(2).iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["a", "c"]);
    }

    #[test]
    fn env_parsing_for_enable_flag() {
        // from_env reads the process env; rather than mutate global env in
        // a test binary (racy across threads), pin the parsing contract on
        // the underlying matcher.
        for on in ["1", "true", "on", " 1 "] {
            assert!(matches!(on.trim(), "1" | "true" | "on"), "{on}");
        }
        for off in ["", "0", "false", "yes"] {
            assert!(!matches!(off.trim(), "1" | "true" | "on"), "{off}");
        }
    }

    #[test]
    fn tenant_tags_record_and_filter() {
        let tr = Tracer::with_capacity(16);
        let h = tr.register("w0");
        // Untagged paths record tenant 0.
        h.span_at(1, "queue", 0.0, 1.0, 0, 0);
        // Tagged paths carry the lane tag through every record variant.
        h.span_at_tagged(2, 2, "queue", 1.0, 3.0, 0, 0);
        h.span_tagged(1, 3, "queue", Instant::now(), Instant::now(), 0, 0);
        h.event_tagged(2, 4, "ingress", Instant::now(), 64);
        let snap = tr.snapshot();
        assert_eq!(snap.spans_for(1)[0].tenant, 0);
        assert_eq!(snap.spans_for(2)[0].tenant, 2);
        assert_eq!(snap.spans_for_tenant(2).len(), 2);
        assert_eq!(snap.stage_count_tenant("queue", 2), 1);
        assert!((snap.stage_total_tenant("queue", 2) - 2.0).abs() < 1e-9);
        assert_eq!(snap.stage_count_tenant("ingress", 2), 1);
        // The all-tenant aggregate still sees every span.
        assert_eq!(snap.stage_count("queue"), 3);
    }

    #[test]
    fn capacity_zero_is_clamped() {
        let tr = Tracer::with_capacity(0);
        let h = tr.register("w0");
        h.span_at(1, "s", 0.0, 1.0, 0, 0);
        h.span_at(2, "s", 1.0, 2.0, 0, 0);
        let (len, cap, dropped, _) = h.ring_stats();
        assert_eq!((len, cap), (1, 1));
        assert_eq!(dropped, 1);
    }
}
