//! vserve-sched: deterministic multi-tenant scheduling core.
//!
//! The live server hosts a model *zoo*: N tenants, each bound to one model,
//! sharing one compute backend and one preproc pool. This crate is the pure
//! scheduling brain for that sharing — no threads, no clocks, no channels.
//! Every decision is a function of explicit microsecond timestamps passed in
//! by the caller, so the whole policy surface is unit-testable tick by tick
//! and replayable inside the discrete-event sim.
//!
//! Pieces, bottom up:
//!
//! * [`TokenBucket`] — per-tenant admission quota (rate + burst), advanced
//!   by caller-supplied `now_us`.
//! * [`TenantSpec`] — one tenant's policy: model binding, weight, priority
//!   class, optional lane deadline, optional quota. Parsed from the
//!   `VSERVE_TENANTS` env format by [`parse_tenants`].
//! * [`ModelLane`] — one tenant's bounded queue plus batch-assembly state
//!   (open linger window, batch cap) and typed admission control:
//!   [`AdmitError::QuotaExceeded`] / [`AdmitError::SloInfeasible`] /
//!   [`AdmitError::Overloaded`] are shed *before* work is queued.
//! * [`DrrPicker`] — deficit round-robin over weighted lanes, grouped into
//!   strict priority classes: a higher class preempts lane *order* (it is
//!   always offered the backend first) but never an in-flight batch.
//! * [`Scheduler`] — the facade composing lanes + picker that the live
//!   server's lane scheduler thread and the sim's batch former both drive.
//!
//! Fairness contract: at saturation with equal per-item cost, lane dispatch
//! shares within one priority class converge to the configured weights —
//! the property the `bench sched` co-location sweep checks end to end.

use std::collections::VecDeque;

/// Env var naming the tenant set for multi-tenant servers.
///
/// Format: tenants joined by `;`, each
/// `name=model[,weight=N][,prio=high|normal|low][,deadline_ms=N]`
/// `[,deadline_us=N][,quota=RPS[:BURST]]`.
pub const TENANTS_ENV: &str = "VSERVE_TENANTS";

/// Strict priority class of a tenant's lane. Classes gate *offering order*
/// only: a ready `High` lane is always picked before any ready `Normal`
/// lane, but a batch already handed to the backend is never preempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    High,
    Normal,
    Low,
}

impl Priority {
    /// Dense index for per-class bookkeeping (0 = highest).
    pub fn class(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    pub const CLASSES: usize = 3;

    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Per-tenant admission quota: sustained rate plus burst capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaSpec {
    /// Sustained admissions per second.
    pub rate_per_s: f64,
    /// Bucket capacity: how many admissions may arrive back-to-back.
    pub burst: u32,
}

/// One tenant's scheduling policy.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant name — the routing key on the wire and in traces.
    pub name: String,
    /// Zoo model this tenant's requests run on.
    pub model: String,
    /// Weighted-fair share within the tenant's priority class.
    pub weight: f64,
    pub priority: Priority,
    /// Lane-level SLO deadline. When set, admission sheds requests whose
    /// estimated completion (queue depth × unit cost + linger) already
    /// exceeds it — EDF-style infeasibility, decided before queueing.
    pub deadline_us: Option<u64>,
    pub quota: Option<QuotaSpec>,
}

impl TenantSpec {
    /// A tenant with default policy: weight 1, `Normal` priority, no
    /// deadline, no quota.
    pub fn new(name: impl Into<String>, model: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            model: model.into(),
            weight: 1.0,
            priority: Priority::Normal,
            deadline_us: None,
            quota: None,
        }
    }

    pub fn weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    pub fn deadline_us(mut self, us: u64) -> Self {
        self.deadline_us = Some(us);
        self
    }

    pub fn quota(mut self, rate_per_s: f64, burst: u32) -> Self {
        self.quota = Some(QuotaSpec { rate_per_s, burst });
        self
    }
}

/// Parses the [`TENANTS_ENV`] format. Returns a typed error string naming
/// the offending field so misconfiguration fails loud at server start.
pub fn parse_tenants(s: &str) -> Result<Vec<TenantSpec>, String> {
    let mut out: Vec<TenantSpec> = Vec::new();
    for part in s.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut fields = part.split(',');
        let head = fields.next().unwrap_or("");
        let (name, model) = head
            .split_once('=')
            .ok_or_else(|| format!("tenant `{part}`: expected name=model"))?;
        let (name, model) = (name.trim(), model.trim());
        if name.is_empty() || model.is_empty() {
            return Err(format!("tenant `{part}`: empty name or model"));
        }
        if out.iter().any(|t| t.name == name) {
            return Err(format!("duplicate tenant name `{name}`"));
        }
        let mut spec = TenantSpec::new(name, model);
        for f in fields {
            let f = f.trim();
            let (k, v) = f
                .split_once('=')
                .ok_or_else(|| format!("tenant `{name}`: bad field `{f}`"))?;
            match k.trim() {
                "weight" => {
                    let w: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("tenant `{name}`: bad weight `{v}`"))?;
                    if !(w > 0.0) || !w.is_finite() {
                        return Err(format!("tenant `{name}`: weight must be > 0"));
                    }
                    spec.weight = w;
                }
                "prio" | "priority" => {
                    spec.priority = match v.trim() {
                        "high" => Priority::High,
                        "normal" => Priority::Normal,
                        "low" => Priority::Low,
                        other => return Err(format!("tenant `{name}`: bad priority `{other}`")),
                    };
                }
                "deadline_ms" => {
                    let ms: u64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("tenant `{name}`: bad deadline_ms `{v}`"))?;
                    spec.deadline_us = Some(ms.saturating_mul(1000));
                }
                "deadline_us" => {
                    let us: u64 = v
                        .trim()
                        .parse()
                        .map_err(|_| format!("tenant `{name}`: bad deadline_us `{v}`"))?;
                    spec.deadline_us = Some(us);
                }
                "quota" => {
                    let (rate, burst) = match v.trim().split_once(':') {
                        Some((r, b)) => (
                            r.parse::<f64>()
                                .map_err(|_| format!("tenant `{name}`: bad quota rate `{r}`"))?,
                            b.parse::<u32>()
                                .map_err(|_| format!("tenant `{name}`: bad quota burst `{b}`"))?,
                        ),
                        None => (
                            v.trim()
                                .parse::<f64>()
                                .map_err(|_| format!("tenant `{name}`: bad quota `{v}`"))?,
                            1,
                        ),
                    };
                    if !(rate > 0.0) || !rate.is_finite() {
                        return Err(format!("tenant `{name}`: quota rate must be > 0"));
                    }
                    spec.quota = Some(QuotaSpec {
                        rate_per_s: rate,
                        burst: burst.max(1),
                    });
                }
                other => return Err(format!("tenant `{name}`: unknown field `{other}`")),
            }
        }
        out.push(spec);
    }
    if out.is_empty() {
        return Err("no tenants specified".into());
    }
    Ok(out)
}

/// Typed admission rejection, decided before any work is queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant's token bucket is empty.
    QuotaExceeded,
    /// The lane deadline cannot be met given queued work — shedding now is
    /// cheaper than doing doomed work.
    SloInfeasible,
    /// The lane's bounded queue is full.
    Overloaded,
}

/// Deterministic token bucket advanced by caller-supplied timestamps.
/// Refill is continuous (fractional tokens), so rates below 1/s work.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate_per_us: f64,
    last_us: u64,
}

impl TokenBucket {
    /// Starts full: a tenant may immediately burst `burst` admissions.
    pub fn new(rate_per_s: f64, burst: u32) -> Self {
        let capacity = burst.max(1) as f64;
        TokenBucket {
            capacity,
            tokens: capacity,
            rate_per_us: rate_per_s.max(0.0) / 1e6,
            last_us: 0,
        }
    }

    pub fn from_spec(q: QuotaSpec) -> Self {
        TokenBucket::new(q.rate_per_s, q.burst)
    }

    /// Takes one token if available at `now_us`. A non-monotonic `now_us`
    /// (clock stepping backwards across threads) never panics and never
    /// mints tokens.
    pub fn try_take(&mut self, now_us: u64) -> bool {
        if now_us > self.last_us {
            let dt = (now_us - self.last_us) as f64;
            self.tokens = (self.tokens + dt * self.rate_per_us).min(self.capacity);
            self.last_us = now_us;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostic; does not refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// Monotonically increasing shed/admit counters for one lane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneCounters {
    pub admitted: u64,
    pub dispatched_items: u64,
    pub dispatched_batches: u64,
    pub shed_quota: u64,
    pub shed_slo: u64,
    pub shed_overload: u64,
}

impl LaneCounters {
    pub fn shed_total(&self) -> u64 {
        self.shed_quota + self.shed_slo + self.shed_overload
    }
}

/// One tenant's lane: a bounded FIFO of queued items plus the batch
/// assembly state (linger window opens when the first item arrives).
/// Generic over the item type so the live server queues real jobs while
/// unit tests and the sim queue plain ids.
#[derive(Debug)]
pub struct ModelLane<T> {
    pub spec: TenantSpec,
    queue: VecDeque<(T, u64)>,
    bucket: Option<TokenBucket>,
    /// EWMA of per-item service cost, fed back by the dispatcher. Zero
    /// until first observation — admission is optimistic until the lane
    /// has evidence, so cold lanes never shed on a guess.
    unit_cost_us: f64,
    queue_cap: usize,
    max_batch: usize,
    linger_us: u64,
    counters: LaneCounters,
}

impl<T> ModelLane<T> {
    pub fn new(spec: TenantSpec, queue_cap: usize, max_batch: usize, linger_us: u64) -> Self {
        let bucket = spec.quota.map(TokenBucket::from_spec);
        ModelLane {
            spec,
            queue: VecDeque::new(),
            bucket,
            unit_cost_us: 0.0,
            queue_cap: queue_cap.max(1),
            max_batch: max_batch.max(1),
            linger_us,
            counters: LaneCounters::default(),
        }
    }

    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn counters(&self) -> LaneCounters {
        self.counters
    }

    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    pub fn linger_us(&self) -> u64 {
        self.linger_us
    }

    /// Runtime-retunable assembly knobs (per-lane, so a tuner scoped to a
    /// lane never fights a co-tenant's).
    pub fn set_assembly(&mut self, max_batch: usize, linger_us: u64) {
        self.max_batch = max_batch.max(1);
        self.linger_us = linger_us;
    }

    pub fn set_queue_cap(&mut self, cap: usize) {
        self.queue_cap = cap.max(1);
    }

    /// Current per-item service estimate used by EDF admission.
    pub fn unit_cost_us(&self) -> f64 {
        self.unit_cost_us
    }

    /// Feed back an observed per-item service cost (µs). EWMA with α=¼:
    /// stable under batch-to-batch jitter, tracks real drift in a few
    /// batches.
    pub fn observe_unit_cost(&mut self, cost_us: f64) {
        if !(cost_us > 0.0) || !cost_us.is_finite() {
            return;
        }
        if self.unit_cost_us == 0.0 {
            self.unit_cost_us = cost_us;
        } else {
            self.unit_cost_us += 0.25 * (cost_us - self.unit_cost_us);
        }
    }

    /// Typed admission: quota, then deadline feasibility, then capacity.
    /// On rejection the item is handed back so the caller can reply with
    /// the typed error — nothing is ever silently dropped.
    pub fn admit(&mut self, item: T, now_us: u64) -> Result<(), (AdmitError, T)> {
        if let Some(b) = self.bucket.as_mut() {
            if !b.try_take(now_us) {
                self.counters.shed_quota += 1;
                return Err((AdmitError::QuotaExceeded, item));
            }
        }
        if let Some(deadline) = self.spec.deadline_us {
            if self.unit_cost_us > 0.0 {
                let est =
                    (self.queue.len() as f64 + 1.0) * self.unit_cost_us + self.linger_us as f64;
                if est > deadline as f64 {
                    self.counters.shed_slo += 1;
                    return Err((AdmitError::SloInfeasible, item));
                }
            }
        }
        if self.queue.len() >= self.queue_cap {
            self.counters.shed_overload += 1;
            return Err((AdmitError::Overloaded, item));
        }
        self.counters.admitted += 1;
        self.queue.push_back((item, now_us));
        Ok(())
    }

    /// Enqueue unconditionally (lane migration / drain repatriation) —
    /// bypasses admission but still counts the item.
    pub fn requeue_front(&mut self, item: T, enq_us: u64) {
        self.queue.push_front((item, enq_us));
    }

    /// Is a batch ready to dispatch at `now_us`? True when the batch cap
    /// is reached or the oldest queued item has lingered out.
    pub fn ready(&self, now_us: u64) -> bool {
        if self.queue.len() >= self.max_batch {
            return true;
        }
        match self.queue.front() {
            Some(&(_, enq)) => now_us >= enq.saturating_add(self.linger_us),
            None => false,
        }
    }

    /// When this lane will next become ready by linger alone, if ever.
    pub fn flush_at(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|&(_, enq)| enq.saturating_add(self.linger_us))
    }

    /// Enqueue timestamp of the oldest queued item (EDF tiebreak).
    pub fn oldest_enq_us(&self) -> Option<u64> {
        self.queue.front().map(|&(_, enq)| enq)
    }

    /// Cost of the batch `take_batch` would hand out right now, in items.
    pub fn pending_batch_cost(&self) -> usize {
        self.queue.len().min(self.max_batch)
    }

    /// Removes up to `max_batch` items in FIFO order, with their enqueue
    /// timestamps (for queue-delay attribution).
    pub fn take_batch(&mut self) -> Vec<(T, u64)> {
        let n = self.pending_batch_cost();
        let out: Vec<(T, u64)> = self.queue.drain(..n).collect();
        self.counters.dispatched_items += out.len() as u64;
        if !out.is_empty() {
            self.counters.dispatched_batches += 1;
        }
        out
    }

    /// Drains everything (lane removal) — no item is lost.
    pub fn drain_all(&mut self) -> Vec<(T, u64)> {
        self.queue.drain(..).collect()
    }
}

/// Deficit round-robin over weighted lanes with strict priority classes.
///
/// Each `pick` walks classes highest-first; within the first class that has
/// a ready lane it runs standard DRR: every visited ready lane earns
/// `quantum × weight` deficit, and the first lane whose deficit covers its
/// batch cost dispatches (deficit reduced by cost). A lane's deficit resets
/// when it goes idle, so credit cannot be hoarded across idle periods.
#[derive(Debug)]
pub struct DrrPicker {
    quantum: f64,
    deficits: Vec<f64>,
    cursors: [usize; Priority::CLASSES],
    /// Whether the lane under each class cursor has already received its
    /// quantum for the current visit (a visit spans multiple `pick` calls
    /// while the lane keeps dispatching on accumulated deficit).
    topped: [bool; Priority::CLASSES],
}

/// The picker's per-lane view: policy plus what the lane wants to dispatch.
#[derive(Clone, Copy, Debug)]
pub struct LaneView {
    pub priority: Priority,
    pub weight: f64,
    /// Cost of the batch the lane would dispatch (items). Ignored unless
    /// `ready`.
    pub cost: f64,
    pub ready: bool,
}

impl DrrPicker {
    pub fn new(quantum: f64) -> Self {
        DrrPicker {
            quantum: if quantum > 0.0 { quantum } else { 1.0 },
            deficits: Vec::new(),
            cursors: [0; Priority::CLASSES],
            topped: [false; Priority::CLASSES],
        }
    }

    /// Grow/shrink per-lane deficit state to `n` lanes (new lanes start at
    /// zero deficit).
    pub fn sync_lanes(&mut self, n: usize) {
        self.deficits.resize(n, 0.0);
        for c in self.cursors.iter_mut() {
            if n == 0 {
                *c = 0;
            } else {
                *c %= n;
            }
        }
    }

    /// Reset a lane's deficit (call when its queue empties).
    pub fn reset(&mut self, lane: usize) {
        if let Some(d) = self.deficits.get_mut(lane) {
            *d = 0.0;
        }
    }

    pub fn deficit(&self, lane: usize) -> f64 {
        self.deficits.get(lane).copied().unwrap_or(0.0)
    }

    /// Picks the next lane to dispatch among `lanes`, or `None` if no lane
    /// is ready. Deterministic: same state + same views ⇒ same pick.
    ///
    /// Classic DRR visit semantics: when the rotation reaches a lane it is
    /// topped up with `quantum × weight` exactly once, then dispatches as
    /// long as its deficit covers the batch cost (the cursor stays on it
    /// across `pick` calls); when the deficit runs dry the rotation moves
    /// on. Over a saturated window each lane's dispatched cost is thus
    /// proportional to its weight.
    pub fn pick(&mut self, lanes: &[LaneView]) -> Option<usize> {
        self.sync_lanes(lanes.len());
        for class in 0..Priority::CLASSES {
            let members: Vec<usize> = (0..lanes.len())
                .filter(|&i| lanes[i].priority.class() == class && lanes[i].ready)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut pos = members
                .iter()
                .position(|&i| i >= self.cursors[class])
                .unwrap_or(0);
            if members[pos] != self.cursors[class] {
                // The lane the last visit ended on is gone or unready —
                // whoever we landed on starts a fresh visit.
                self.topped[class] = false;
            }
            // Each full rotation tops up every ready member once, so the
            // largest pending cost is covered within
            // ceil(max_cost / (quantum × min_weight)) rotations. The cap is
            // a safety net against degenerate float inputs only.
            for _ in 0..100_000usize {
                let i = members[pos];
                if !self.topped[class] {
                    self.deficits[i] += self.quantum * lanes[i].weight.max(f64::MIN_POSITIVE);
                    self.topped[class] = true;
                }
                if self.deficits[i] >= lanes[i].cost {
                    self.deficits[i] -= lanes[i].cost;
                    self.cursors[class] = i;
                    return Some(i);
                }
                pos = (pos + 1) % members.len();
                self.cursors[class] = members[pos];
                self.topped[class] = false;
            }
            // Degenerate weights/costs (inf, NaN): fall back to the lane
            // under the cursor rather than spinning.
            let i = members[pos];
            self.cursors[class] = i;
            return Some(i);
        }
        None
    }
}

/// Scheduler-wide defaults applied to new lanes.
#[derive(Clone, Copy, Debug)]
pub struct SchedOptions {
    pub queue_cap: usize,
    pub max_batch: usize,
    pub linger_us: u64,
    /// DRR quantum in cost units (items) per visit per unit weight.
    pub quantum: f64,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            queue_cap: 256,
            max_batch: 8,
            linger_us: 2_000,
            quantum: 1.0,
        }
    }
}

/// A dispatched batch: which lane it came from and the items with their
/// enqueue timestamps.
#[derive(Debug)]
pub struct Batch<T> {
    pub lane: usize,
    pub items: Vec<(T, u64)>,
}

/// The facade the live server's lane scheduler thread and the sim's batch
/// former drive: lanes + picker + admission, all deterministic.
#[derive(Debug)]
pub struct Scheduler<T> {
    lanes: Vec<ModelLane<T>>,
    picker: DrrPicker,
    opts: SchedOptions,
}

impl<T> Scheduler<T> {
    pub fn new(opts: SchedOptions) -> Self {
        Scheduler {
            picker: DrrPicker::new(opts.quantum),
            lanes: Vec::new(),
            opts,
        }
    }

    /// Adds a lane for `spec`, returning its index. Lane indices are dense
    /// and stable for the lifetime of the scheduler (removal drains a lane
    /// but keeps its slot, so indices in flight never dangle).
    pub fn add_lane(&mut self, spec: TenantSpec) -> usize {
        self.lanes.push(ModelLane::new(
            spec,
            self.opts.queue_cap,
            self.opts.max_batch,
            self.opts.linger_us,
        ));
        self.picker.sync_lanes(self.lanes.len());
        self.lanes.len() - 1
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    pub fn lane(&self, idx: usize) -> &ModelLane<T> {
        &self.lanes[idx]
    }

    pub fn lane_mut(&mut self, idx: usize) -> &mut ModelLane<T> {
        &mut self.lanes[idx]
    }

    pub fn lanes(&self) -> &[ModelLane<T>] {
        &self.lanes
    }

    /// Finds a lane by tenant name.
    pub fn lane_by_name(&self, name: &str) -> Option<usize> {
        self.lanes.iter().position(|l| l.spec.name == name)
    }

    /// Typed admission into lane `idx` at `now_us`.
    pub fn submit(&mut self, idx: usize, item: T, now_us: u64) -> Result<(), (AdmitError, T)> {
        self.lanes[idx].admit(item, now_us)
    }

    /// Dispatches the next ready batch at `now_us`, if any. The picker
    /// chooses among ready lanes (priority classes first, DRR within);
    /// lanes that empty out get their deficit reset.
    pub fn next_batch(&mut self, now_us: u64) -> Option<Batch<T>> {
        let views: Vec<LaneView> = self
            .lanes
            .iter()
            .map(|l| LaneView {
                priority: l.spec.priority,
                weight: l.spec.weight,
                cost: l.pending_batch_cost() as f64,
                ready: l.ready(now_us),
            })
            .collect();
        let lane = self.picker.pick(&views)?;
        let items = self.lanes[lane].take_batch();
        if self.lanes[lane].is_empty() {
            self.picker.reset(lane);
        }
        Some(Batch { lane, items })
    }

    /// Earliest future instant at which some lane becomes ready by linger
    /// (for bounding a scheduler thread's wait). `None` when all lanes are
    /// idle; a past instant means a batch is dispatchable now.
    pub fn next_flush_at(&self) -> Option<u64> {
        self.lanes.iter().filter_map(|l| l.flush_at()).min()
    }

    /// Drains every queued item of lane `idx` (lane removal / shutdown) —
    /// callers re-route or fail these explicitly; nothing is dropped.
    pub fn drain_lane(&mut self, idx: usize) -> Vec<(T, u64)> {
        self.picker.reset(idx);
        self.lanes[idx].drain_all()
    }

    pub fn total_depth(&self) -> usize {
        self.lanes.iter().map(|l| l.depth()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(name: &str) -> TenantSpec {
        TenantSpec::new(name, name)
    }

    // ---------------------------------------------------------- TokenBucket

    #[test]
    fn bucket_bursts_then_throttles() {
        let mut b = TokenBucket::new(10.0, 3);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst capacity is 3");
        // 10/s = one token per 100_000 µs.
        assert!(!b.try_take(50_000));
        assert!(b.try_take(100_000));
        assert!(!b.try_take(100_000));
    }

    #[test]
    fn bucket_caps_at_capacity() {
        let mut b = TokenBucket::new(1000.0, 2);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        // A long idle period must not accumulate more than `burst` tokens.
        assert!(b.try_take(10_000_000));
        assert!(b.try_take(10_000_000));
        assert!(!b.try_take(10_000_000));
    }

    #[test]
    fn bucket_survives_clock_regression() {
        let mut b = TokenBucket::new(1.0, 1);
        assert!(b.try_take(1_000_000));
        // Clock steps backwards: no panic, no minted tokens.
        assert!(!b.try_take(500_000));
        assert!(b.try_take(2_000_000));
    }

    #[test]
    fn bucket_fractional_rates_accumulate() {
        // 0.5/s: one token every 2 s.
        let mut b = TokenBucket::new(0.5, 1);
        assert!(b.try_take(0));
        assert!(!b.try_take(1_000_000));
        assert!(b.try_take(2_000_000));
    }

    // -------------------------------------------------------- parse_tenants

    #[test]
    fn parse_full_spec() {
        let ts = parse_tenants(
            "lc=resnet18,weight=3,prio=high,deadline_ms=50,quota=100:8;\
             be=vit_large,weight=1,prio=low",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].name, "lc");
        assert_eq!(ts[0].model, "resnet18");
        assert_eq!(ts[0].weight, 3.0);
        assert_eq!(ts[0].priority, Priority::High);
        assert_eq!(ts[0].deadline_us, Some(50_000));
        assert_eq!(
            ts[0].quota,
            Some(QuotaSpec {
                rate_per_s: 100.0,
                burst: 8
            })
        );
        assert_eq!(ts[1].priority, Priority::Low);
        assert_eq!(ts[1].deadline_us, None);
        assert_eq!(ts[1].quota, None);
    }

    #[test]
    fn parse_defaults_and_whitespace() {
        let ts = parse_tenants(" a = m1 ; b=m2, weight = 2.5 ").unwrap();
        assert_eq!(ts[0].name, "a");
        assert_eq!(ts[0].model, "m1");
        assert_eq!(ts[0].weight, 1.0);
        assert_eq!(ts[0].priority, Priority::Normal);
        assert_eq!(ts[1].weight, 2.5);
    }

    #[test]
    fn parse_quota_without_burst_defaults_to_one() {
        let ts = parse_tenants("a=m,quota=5").unwrap();
        assert_eq!(
            ts[0].quota,
            Some(QuotaSpec {
                rate_per_s: 5.0,
                burst: 1
            })
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_tenants("").is_err());
        assert!(parse_tenants("noequals").is_err());
        assert!(parse_tenants("a=").is_err());
        assert!(parse_tenants("=m").is_err());
        assert!(parse_tenants("a=m,weight=0").is_err());
        assert!(parse_tenants("a=m,weight=-1").is_err());
        assert!(parse_tenants("a=m,prio=urgent").is_err());
        assert!(parse_tenants("a=m,deadline_ms=abc").is_err());
        assert!(parse_tenants("a=m,quota=0").is_err());
        assert!(parse_tenants("a=m,frobnicate=1").is_err());
        assert!(parse_tenants("a=m;a=m2").is_err(), "duplicate names");
    }

    // ------------------------------------------------------------ ModelLane

    #[test]
    fn lane_batches_on_cap_and_linger() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a"), 16, 4, 1_000);
        assert!(!lane.ready(0));
        for i in 0..3 {
            lane.admit(i, 100).unwrap();
        }
        assert!(!lane.ready(500), "3 < cap and linger not expired");
        assert_eq!(lane.flush_at(), Some(1_100));
        assert!(lane.ready(1_100), "linger expired");
        lane.admit(3, 600).unwrap();
        assert!(lane.ready(700), "batch cap reached");
        let batch = lane.take_batch();
        assert_eq!(
            batch.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(lane.is_empty());
        assert!(!lane.ready(10_000));
    }

    #[test]
    fn lane_take_batch_respects_cap() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a"), 64, 4, 0);
        for i in 0..10 {
            lane.admit(i, 0).unwrap();
        }
        assert_eq!(lane.pending_batch_cost(), 4);
        let b1 = lane.take_batch();
        assert_eq!(b1.len(), 4);
        assert_eq!(lane.depth(), 6);
        let c = lane.counters();
        assert_eq!(c.dispatched_items, 4);
        assert_eq!(c.dispatched_batches, 1);
    }

    #[test]
    fn lane_overload_is_typed_and_returns_item() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a"), 2, 8, 0);
        lane.admit(1, 0).unwrap();
        lane.admit(2, 0).unwrap();
        match lane.admit(3, 0) {
            Err((AdmitError::Overloaded, item)) => assert_eq!(item, 3),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(lane.counters().shed_overload, 1);
        assert_eq!(lane.depth(), 2);
    }

    #[test]
    fn lane_quota_sheds_typed() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a").quota(10.0, 2), 64, 8, 0);
        lane.admit(1, 0).unwrap();
        lane.admit(2, 0).unwrap();
        match lane.admit(3, 0) {
            Err((AdmitError::QuotaExceeded, 3)) => {}
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert_eq!(lane.counters().shed_quota, 1);
        // After refill the lane admits again.
        lane.admit(3, 200_000).unwrap();
        assert_eq!(lane.depth(), 3);
    }

    #[test]
    fn lane_edf_sheds_only_with_evidence() {
        // Deadline 10 ms, unit cost unknown: optimistic, admits anything.
        let mut lane: ModelLane<u32> =
            ModelLane::new(spec("a").deadline_us(10_000), 1024, 8, 1_000);
        for i in 0..100 {
            lane.admit(i, 0).unwrap();
        }
        assert_eq!(lane.counters().shed_slo, 0);
        // Now the dispatcher reports 1 ms/item: est for item 101 is
        // (100+1)×1000 + 1000 linger ≫ 10 ms deadline.
        lane.observe_unit_cost(1_000.0);
        match lane.admit(100, 0) {
            Err((AdmitError::SloInfeasible, 100)) => {}
            other => panic!("expected SloInfeasible, got {other:?}"),
        }
        assert_eq!(lane.counters().shed_slo, 1);
        // Drain the queue: the same lane becomes feasible again.
        while !lane.is_empty() {
            lane.take_batch();
        }
        lane.admit(100, 0).unwrap();
    }

    #[test]
    fn lane_without_deadline_never_slo_sheds() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a"), 4096, 8, 0);
        lane.observe_unit_cost(1e9);
        for i in 0..1000 {
            lane.admit(i, 0).unwrap();
        }
        assert_eq!(lane.counters().shed_slo, 0);
    }

    #[test]
    fn lane_unit_cost_ewma_tracks() {
        let mut lane: ModelLane<u32> = ModelLane::new(spec("a"), 4, 4, 0);
        lane.observe_unit_cost(1000.0);
        assert_eq!(lane.unit_cost_us(), 1000.0);
        lane.observe_unit_cost(2000.0);
        assert!((lane.unit_cost_us() - 1250.0).abs() < 1e-9);
        lane.observe_unit_cost(f64::NAN);
        lane.observe_unit_cost(-5.0);
        assert!(
            (lane.unit_cost_us() - 1250.0).abs() < 1e-9,
            "bad samples ignored"
        );
    }

    // ------------------------------------------------------------ DrrPicker

    /// Drives a saturated picker: every lane always ready at unit cost.
    fn drr_shares(weights: &[f64], picks: usize) -> Vec<usize> {
        let mut p = DrrPicker::new(1.0);
        let views: Vec<LaneView> = weights
            .iter()
            .map(|&w| LaneView {
                priority: Priority::Normal,
                weight: w,
                cost: 1.0,
                ready: true,
            })
            .collect();
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..picks {
            counts[p.pick(&views).unwrap()] += 1;
        }
        counts
    }

    #[test]
    fn drr_equal_weights_round_robin() {
        let counts = drr_shares(&[1.0, 1.0, 1.0], 3000);
        for &c in &counts {
            assert_eq!(c, 1000);
        }
    }

    #[test]
    fn drr_weighted_shares_track_weights() {
        let counts = drr_shares(&[3.0, 1.0], 4000);
        let share = counts[0] as f64 / 4000.0;
        assert!(
            (share - 0.75).abs() < 0.01,
            "3:1 weights should give 75% share, got {share}"
        );
    }

    #[test]
    fn drr_fractional_weights() {
        let counts = drr_shares(&[0.5, 0.25, 0.25], 4000);
        let s0 = counts[0] as f64 / 4000.0;
        assert!((s0 - 0.5).abs() < 0.01, "got {s0}");
    }

    #[test]
    fn drr_priority_preempts_lane_order() {
        let mut p = DrrPicker::new(1.0);
        // Lane 0 is Low but listed first; lane 1 is High.
        let views = [
            LaneView {
                priority: Priority::Low,
                weight: 100.0,
                cost: 1.0,
                ready: true,
            },
            LaneView {
                priority: Priority::High,
                weight: 0.1,
                cost: 1.0,
                ready: true,
            },
        ];
        for _ in 0..50 {
            assert_eq!(p.pick(&views), Some(1), "High always wins while ready");
        }
        // High goes idle: Low drains.
        let mut idle = views;
        idle[1].ready = false;
        assert_eq!(p.pick(&idle), Some(0));
    }

    #[test]
    fn drr_skips_unready_lanes() {
        let mut p = DrrPicker::new(1.0);
        let views = [
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 1.0,
                ready: false,
            },
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 1.0,
                ready: true,
            },
        ];
        assert_eq!(p.pick(&views), Some(1));
        assert_eq!(p.pick(&[views[0]]), None, "nothing ready → None");
    }

    #[test]
    fn drr_reset_prevents_hoarded_credit() {
        let mut p = DrrPicker::new(1.0);
        let both = [
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 1.0,
                ready: true,
            },
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 1.0,
                ready: true,
            },
        ];
        // Lane 1 idles while lane 0 dispatches many times; lane 1's deficit
        // must not grow while it is not ready.
        let only0 = [
            both[0],
            LaneView {
                ready: false,
                ..both[1]
            },
        ];
        for _ in 0..100 {
            assert_eq!(p.pick(&only0), Some(0));
        }
        p.reset(1);
        assert!(p.deficit(1) < 1.0, "idle lane holds no credit");
        // Back to both ready: shares are immediately 1:1, not a lane-1 burst.
        let mut counts = [0usize; 2];
        for _ in 0..200 {
            counts[p.pick(&both).unwrap()] += 1;
        }
        assert!((counts[0] as i64 - counts[1] as i64).abs() <= 2);
    }

    #[test]
    fn drr_variable_costs_fair_in_items() {
        // Lane 0 dispatches batches of 4, lane 1 batches of 1, equal
        // weights: lane 1 should dispatch ~4× as often so *item* shares
        // stay 1:1.
        let mut p = DrrPicker::new(1.0);
        let views = [
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 4.0,
                ready: true,
            },
            LaneView {
                priority: Priority::Normal,
                weight: 1.0,
                cost: 1.0,
                ready: true,
            },
        ];
        let mut items = [0f64; 2];
        for _ in 0..5000 {
            let i = p.pick(&views).unwrap();
            items[i] += views[i].cost;
        }
        let share = items[0] / (items[0] + items[1]);
        assert!(
            (share - 0.5).abs() < 0.02,
            "item shares should be 1:1, got {share}"
        );
    }

    #[test]
    fn drr_degenerate_inputs_never_hang() {
        let mut p = DrrPicker::new(1.0);
        let views = [LaneView {
            priority: Priority::Normal,
            weight: f64::MIN_POSITIVE,
            cost: f64::INFINITY,
            ready: true,
        }];
        // Infinite cost can never be covered: the safety cap falls back to
        // the first ready lane instead of spinning forever.
        assert_eq!(p.pick(&views), Some(0));
    }

    // ------------------------------------------------------------ Scheduler

    fn sched(specs: Vec<TenantSpec>, opts: SchedOptions) -> Scheduler<u64> {
        let mut s = Scheduler::new(opts);
        for t in specs {
            s.add_lane(t);
        }
        s
    }

    #[test]
    fn scheduler_routes_and_batches() {
        let mut s = sched(
            vec![spec("a"), spec("b")],
            SchedOptions {
                max_batch: 2,
                linger_us: 1_000,
                ..SchedOptions::default()
            },
        );
        assert_eq!(s.lane_by_name("b"), Some(1));
        s.submit(0, 10, 0).unwrap();
        s.submit(0, 11, 0).unwrap();
        s.submit(1, 20, 0).unwrap();
        // Lane 0 is full (cap 2) → dispatchable immediately; lane 1 lingers.
        let b = s.next_batch(0).unwrap();
        assert_eq!(b.lane, 0);
        assert_eq!(
            b.items.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            vec![10, 11]
        );
        assert!(s.next_batch(0).is_none(), "lane 1 still lingering");
        assert_eq!(s.next_flush_at(), Some(1_000));
        let b = s.next_batch(1_000).unwrap();
        assert_eq!(b.lane, 1);
        assert_eq!(s.total_depth(), 0);
    }

    #[test]
    fn scheduler_drain_preserves_items() {
        let mut s = sched(vec![spec("a")], SchedOptions::default());
        for i in 0..10 {
            s.submit(0, i, 0).unwrap();
        }
        let drained = s.drain_lane(0);
        assert_eq!(drained.len(), 10);
        assert_eq!(s.total_depth(), 0);
        assert!(s.next_batch(u64::MAX / 2).is_none());
    }

    #[test]
    fn scheduler_priority_lane_dispatches_first() {
        let mut s = sched(
            vec![
                spec("be").priority(Priority::Low),
                spec("lc").priority(Priority::High),
            ],
            SchedOptions {
                max_batch: 1,
                linger_us: 0,
                ..SchedOptions::default()
            },
        );
        for i in 0..5 {
            s.submit(0, 100 + i, 0).unwrap();
            s.submit(1, 200 + i, 0).unwrap();
        }
        // All five High batches come out before any Low batch.
        for i in 0..5 {
            let b = s.next_batch(0).unwrap();
            assert_eq!(b.lane, 1, "dispatch {i} should be the High lane");
        }
        assert_eq!(s.next_batch(0).unwrap().lane, 0);
    }

    #[test]
    fn scheduler_weighted_item_shares_at_saturation() {
        // Closed-loop saturation: keep both lanes topped up, count items.
        let mut s = sched(
            vec![spec("a").weight(3.0), spec("b").weight(1.0)],
            SchedOptions {
                max_batch: 4,
                linger_us: 0,
                queue_cap: 64,
                quantum: 1.0,
            },
        );
        let mut items = [0usize; 2];
        let mut next_id = 0u64;
        for tick in 0..4000u64 {
            for lane in 0..2 {
                while s.lane(lane).depth() < 16 {
                    let _ = s.submit(lane, next_id, tick);
                    next_id += 1;
                }
            }
            if let Some(b) = s.next_batch(tick) {
                items[b.lane] += b.items.len();
            }
        }
        let share = items[0] as f64 / (items[0] + items[1]) as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "3:1 weights should give ~75% item share, got {share}"
        );
    }

    #[test]
    fn scheduler_flush_at_tracks_oldest() {
        let mut s = sched(
            vec![spec("a"), spec("b")],
            SchedOptions {
                max_batch: 100,
                linger_us: 500,
                ..SchedOptions::default()
            },
        );
        assert_eq!(s.next_flush_at(), None);
        s.submit(1, 1, 2_000).unwrap();
        s.submit(0, 2, 2_300).unwrap();
        assert_eq!(s.next_flush_at(), Some(2_500), "lane b queued first");
        let b = s.next_batch(2_500).unwrap();
        assert_eq!(b.lane, 1);
        assert_eq!(s.next_flush_at(), Some(2_800));
    }

    #[test]
    fn scheduler_per_lane_assembly_knobs() {
        let mut s = sched(vec![spec("a"), spec("b")], SchedOptions::default());
        s.lane_mut(0).set_assembly(1, 0);
        s.lane_mut(1).set_assembly(64, 50_000);
        s.submit(0, 1, 0).unwrap();
        s.submit(1, 2, 0).unwrap();
        let b = s.next_batch(0).unwrap();
        assert_eq!(b.lane, 0, "lane a dispatches immediately at cap 1");
        assert!(s.next_batch(0).is_none(), "lane b lingers 50 ms");
        assert!(s.next_batch(50_000).is_some());
    }

    // Conservation: across arbitrary interleavings of submit / dispatch /
    // drain, every admitted item comes out exactly once — the lane-safety
    // property the live refactor leans on.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn scheduler_conserves_items(
            ops in prop::collection::vec((0u8..6, 0u8..3), 1..200),
            max_batch in 1usize..6,
            linger in 0u64..2000,
        ) {
            let mut s = sched(
                vec![spec("a"), spec("b").weight(2.0), spec("c").priority(Priority::High)],
                SchedOptions { max_batch, linger_us: linger, queue_cap: 16, quantum: 1.0 },
            );
            let mut now = 0u64;
            let mut next_id = 0u64;
            let mut submitted = Vec::new();
            let mut out = Vec::new();
            for (op, lane) in ops {
                let lane = lane as usize;
                now += 137;
                match op {
                    0 | 1 | 2 => {
                        let id = next_id;
                        next_id += 1;
                        if s.submit(lane, id, now).is_ok() {
                            submitted.push(id);
                        }
                    }
                    3 => {
                        if let Some(b) = s.next_batch(now) {
                            out.extend(b.items.iter().map(|&(v, _)| v));
                        }
                    }
                    4 => out.extend(s.drain_lane(lane).iter().map(|&(v, _)| v)),
                    _ => now += 5_000,
                }
            }
            for lane in 0..3 {
                out.extend(s.drain_lane(lane).iter().map(|&(v, _)| v));
            }
            out.sort_unstable();
            submitted.sort_unstable();
            prop_assert_eq!(out, submitted);
        }

        #[test]
        fn drr_shares_converge_for_random_weights(
            w0 in 1u32..8, w1 in 1u32..8,
        ) {
            let counts = drr_shares(&[w0 as f64, w1 as f64], 6000);
            let want = w0 as f64 / (w0 + w1) as f64;
            let got = counts[0] as f64 / 6000.0;
            prop_assert!(
                (got - want).abs() < 0.02,
                "weights {}:{} want share {} got {}", w0, w1, want, got
            );
        }

        #[test]
        fn bucket_never_exceeds_configured_rate(
            rate in 1u32..200,
            burst in 1u32..16,
            steps in prop::collection::vec(0u64..5_000, 1..300),
        ) {
            let mut b = TokenBucket::new(rate as f64, burst);
            let mut now = 0u64;
            let mut taken = 0u64;
            for dt in steps {
                now += dt;
                if b.try_take(now) {
                    taken += 1;
                }
            }
            // Over [0, now] at most burst + rate×seconds tokens exist.
            let bound = burst as u64 + (rate as f64 * now as f64 / 1e6).ceil() as u64 + 1;
            prop_assert!(taken <= bound, "took {} > bound {}", taken, bound);
        }

        #[test]
        fn parse_tenants_roundtrips_weights(
            w in 1u32..100, burst in 1u32..64,
        ) {
            let s = format!("t=m,weight={w},quota=50:{burst}");
            let ts = parse_tenants(&s).unwrap();
            prop_assert_eq!(ts[0].weight, w as f64);
            prop_assert_eq!(ts[0].quota.unwrap().burst, burst);
        }
    }
}
