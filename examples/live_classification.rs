//! Live-mode classification: real JPEGs through a real mini-server.
//!
//! Where the simulation *models* the paper's server, this example *is*
//! one: actual JPEG bytes (encoded by `vserve-codec`) flow through real
//! preprocessing threads (decode → resize → normalize), a dynamic batcher,
//! and a real `vserve-dnn` CNN — and we measure where the wall-clock time
//! goes on this machine, reproducing the paper's measurement methodology
//! at laptop scale.
//!
//! Run with: `cargo run --release --example live_classification`

use std::time::Duration;

use vserve::prelude::*;
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_workload::synthetic_jpeg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small CNN at 64x64 keeps a real forward pass fast on any host.
    let side = 64;
    let model = Model::from_graph(models::micro_cnn(side, 10)?, 42);

    let server = LiveServer::start(
        model,
        LiveOptions {
            preproc_workers: 2,
            inference_workers: 1,
            max_batch: 8,
            max_queue_delay: Duration::from_millis(2),
            input_side: side,
            ..LiveOptions::default()
        },
    );

    println!("== live classification: real decode + real inference ==\n");

    for (label, spec) in [
        ("small  (60x70)", ImageSpec::small()),
        ("medium (500x375)", ImageSpec::new(500, 375, 0)),
        ("large  (1920x1080)", ImageSpec::new(1920, 1080, 0)),
    ] {
        let jpeg = synthetic_jpeg(&spec, 7);
        let jpeg_kb = jpeg.len() as f64 / 1024.0;

        // Warm up, then measure a few requests.
        let _ = server.infer(jpeg.clone())?;
        let mut preproc = Duration::ZERO;
        let mut inference = Duration::ZERO;
        let mut total = Duration::ZERO;
        let runs = 5;
        for _ in 0..runs {
            let r = server.infer(jpeg.clone())?;
            preproc += r.preproc;
            inference += r.inference;
            total += r.total;
        }
        let (p, i, t) = (
            preproc / runs as u32,
            inference / runs as u32,
            total / runs as u32,
        );
        let share = p.as_secs_f64() / t.as_secs_f64() * 100.0;
        println!(
            "{label:>18} | jpeg {jpeg_kb:7.1} kB | preproc {:>9.2?} | inference {:>9.2?} | total {:>9.2?} | preproc {share:4.1}%",
            p, i, t
        );
    }

    let m = server.metrics();
    println!(
        "\nserver totals: {} requests, {} batched forward calls (mean batch {:.2}),\n\
         {:.1} img/s, p99 {:.2} ms, stage shares queue {:.1}% / preproc {:.1}% / inference {:.1}%",
        m.completed,
        m.forward_calls,
        m.mean_batch,
        m.throughput,
        m.latency.p99 * 1e3,
        m.queue_share() * 100.0,
        m.preproc_share() * 100.0,
        m.inference_share() * 100.0,
    );

    println!(
        "\nEven on a laptop-scale CNN, the paper's effect is visible: as the\n\
         input image grows, decoding dominates and the DNN's share of each\n\
         request collapses."
    );
    Ok(())
}
