//! Network round trip: a real TCP server and a pooled, pipelining client.
//!
//! Where `live_classification` drives the mini-server in-process, this
//! example puts `vserve-net`'s framed wire protocol between client and
//! server on loopback — so the paper's client→server data-transfer and
//! serialization rows actually exist and get measured, per request,
//! alongside queue/preproc/inference.
//!
//! Run with: `cargo run --release --example net_roundtrip`

use std::time::Duration;

use vserve_device::ImageSpec;
use vserve_dnn::{models, Model};
use vserve_net::{ClientOptions, NetClient, NetOptions, NetServer};
use vserve_server::live::LiveOptions;
use vserve_workload::synthetic_jpeg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 64;
    let model = Model::from_graph(models::micro_cnn(side, 10)?, 42);

    // A real listener on an ephemeral loopback port (set VSERVE_NET_ADDR
    // to serve elsewhere), wrapping the same live server the in-process
    // example uses.
    let server = NetServer::bind(
        model,
        NetOptions {
            live: LiveOptions {
                preproc_workers: 2,
                inference_workers: 1,
                max_batch: 8,
                max_queue_delay: Duration::from_millis(2),
                input_side: side,
                ..LiveOptions::default()
            },
            ..NetOptions::default()
        },
    )?;
    println!("serving on {}\n", server.local_addr());

    // A pooled client; every request is framed, written to the socket,
    // and answered with a typed response frame carrying the breakdown.
    let client = NetClient::connect(server.local_addr(), ClientOptions::default())?;

    println!(
        "{:>18} | {:>8} | {:>9} | {:>11} | {:>9} | {:>9} | {:>9} | {:>9}",
        "payload",
        "jpeg kB",
        "transfer",
        "deserialize",
        "queue",
        "preproc",
        "inference",
        "round trip"
    );
    for (label, spec) in [
        ("small  (60x70)", ImageSpec::small()),
        ("medium (500x375)", ImageSpec::new(500, 375, 0)),
        ("large  (1920x1080)", ImageSpec::new(1920, 1080, 0)),
    ] {
        let jpeg = synthetic_jpeg(&spec, 7);
        let _ = client.infer(&jpeg)?; // warmup
        let r = client.infer(&jpeg)?;
        println!(
            "{label:>18} | {:8.1} | {:>9.2?} | {:>11.2?} | {:>9.2?} | {:>9.2?} | {:>9.2?} | {:>9.2?}",
            jpeg.len() as f64 / 1024.0,
            r.transfer,
            r.deserialize,
            r.queue,
            r.preproc,
            r.inference,
            r.round_trip,
        );
    }

    // Pipelining: fire a burst on the pool before waiting on anything.
    let burst: Vec<Vec<u8>> = (0..16)
        .map(|i| synthetic_jpeg(&ImageSpec::new(320, 240, 0), i))
        .collect();
    let pending: Vec<_> = burst
        .iter()
        .map(|p| client.submit(p))
        .collect::<Result<_, _>>()?;
    let mut batched = 0usize;
    for p in pending {
        if p.wait()?.batch_size > 1 {
            batched += 1;
        }
    }
    println!("\nburst of 16 pipelined requests: {batched} rode in batches > 1");

    let m = server.metrics();
    let summary = m.summary();
    println!(
        "server: {} conns accepted, {} frames ({} bad), {} completed",
        m.accepted, m.frames, m.bad_frames, m.live.completed
    );
    println!(
        "stage shares: rpc {:.2}% | queue {:.1}% | preproc {:.1}% | inference {:.1}%",
        summary.rpc_share() * 100.0,
        summary.queue_share() * 100.0,
        summary.preproc_share() * 100.0,
        summary.inference_share() * 100.0,
    );
    println!(
        "\nThe wire's transfer + deserialize legs are real but small next to\n\
         preprocessing — the paper's point about where server time actually goes."
    );
    Ok(())
}
