//! Quickstart: measure where a DNN inference request's time actually goes.
//!
//! Runs the paper's throughput-optimized server (simulated on the
//! calibrated i9-13900K + RTX 4090 model) serving ViT-Base on medium
//! ImageNet images, then prints throughput, latency, and the per-stage
//! breakdown — the core measurement of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use vserve::prelude::*;

fn main() {
    let node = NodeConfig::paper_testbed();

    println!("== vserve quickstart: ViT-Base on medium (500x375, 121 kB) images ==\n");

    for (label, config) in [
        ("GPU preprocessing (DALI-style)", ServerConfig::optimized()),
        ("CPU preprocessing", ServerConfig::optimized_cpu_preproc()),
    ] {
        let experiment = Experiment {
            node,
            config,
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(ImageSpec::medium()),
            concurrency: 128,
            warmup_s: 0.5,
            measure_s: 2.0,
            seed: 1,
        };

        let loaded = experiment.run();
        let zero = experiment.zero_load();

        println!("--- {label} ---");
        println!("throughput @128 clients : {:8.0} img/s", loaded.throughput);
        println!(
            "latency  avg / p99      : {:8.2} / {:.2} ms",
            loaded.latency.mean * 1e3,
            loaded.latency.p99 * 1e3
        );
        println!(
            "energy per image        : {:8.3} J (cpu {:.3} + gpu {:.3})",
            loaded.energy.total_j_per_image(),
            loaded.energy.cpu_j_per_image(),
            loaded.energy.gpu_j_per_image()
        );
        println!(
            "zero-load latency       : {:8.2} ms, {:.0}% preprocessing / {:.0}% inference",
            zero.latency.mean * 1e3,
            zero.preproc_share() * 100.0,
            zero.inference_share() * 100.0
        );
        println!("\nzero-load stage breakdown:");
        println!("{}", zero.breakdown.to_table());
    }

    println!(
        "The paper's headline (§4.2): preprocessing alone is ~56% of a medium\n\
         image's zero-load request time with CPU preprocessing — inference is\n\
         not where the time goes."
    );
}
