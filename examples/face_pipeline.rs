//! The §4.7 multi-DNN face pipeline, two ways.
//!
//! Part 1 runs the calibrated discrete-event model across all three
//! couplings (Kafka-like, Redis-like, fused) and prints the Fig 11
//! comparison. Part 2 wires the *real* brokers from `vserve-broker`
//! (an fsync'ing disk log vs. an in-memory topic) between two real
//! `LiveServer` stages and measures actual hand-off costs on this host.
//!
//! Run with: `cargo run --release --example face_pipeline`

use std::sync::Arc;
use std::time::{Duration, Instant};

use vserve::prelude::*;
use vserve_broker::{Broker, FsyncPolicy, LogBroker, MemBroker};
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_workload::synthetic_jpeg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Part 1: calibrated pipeline model (Fig 11) ==\n");
    let node = NodeConfig::paper_testbed();
    for faces in [2u64, 9, 25] {
        println!("faces/frame = {faces}");
        for broker in [
            BrokerKind::KafkaLike,
            BrokerKind::RedisLike,
            BrokerKind::Fused,
        ] {
            let report = PipelineExperiment {
                node,
                broker,
                faces: FacesPerFrame::fixed(faces),
                concurrency: 64,
                warmup_s: 0.5,
                measure_s: 2.0,
                seed: 7,
            }
            .run();
            println!("  {}", report.to_row());
        }
        println!();
    }

    println!("== Part 2: real brokers between two real model stages ==\n");
    // Stage 1: a detector-shaped CNN; stage 2: an identifier-shaped CNN.
    let detector = LiveServer::start(
        Model::from_graph(models::micro_cnn(64, 4)?, 1),
        LiveOptions {
            input_side: 64,
            ..LiveOptions::default()
        },
    );
    let identifier = LiveServer::start(
        Model::from_graph(models::micro_cnn(32, 16)?, 2),
        LiveOptions {
            input_side: 32,
            ..LiveOptions::default()
        },
    );

    let dir = std::env::temp_dir().join(format!("vserve-face-pipeline-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let disk: Arc<dyn Broker> = Arc::new(LogBroker::open(&dir, FsyncPolicy::PerMessage)?);
    let mem: Arc<dyn Broker> = Arc::new(MemBroker::new());

    let frame = synthetic_jpeg(&ImageSpec::new(320, 240, 0), 3);
    let crop = synthetic_jpeg(&ImageSpec::new(64, 64, 0), 4);
    let faces_per_frame = 5usize;
    let frames = 20usize;

    for (name, broker) in [("disk log (fsync/msg)", &disk), ("in-memory", &mem)] {
        let start = Instant::now();
        let mut broker_time = Duration::ZERO;
        for _ in 0..frames {
            // Stage 1: detect on the frame.
            let _ = detector.infer(frame.clone())?;
            // Publish each detected face crop.
            let t0 = Instant::now();
            for _ in 0..faces_per_frame {
                broker.publish("faces", &crop)?;
            }
            broker_time += t0.elapsed();
            // Stage 2: drain and identify.
            let t1 = Instant::now();
            let msgs = broker.fetch("faces", "identify", faces_per_frame)?;
            broker_time += t1.elapsed();
            for m in msgs {
                let _ = identifier.infer(m.to_vec())?;
            }
        }
        let total = start.elapsed();
        println!(
            "{name:>22}: {frames} frames x {faces_per_frame} faces in {total:>8.2?}  (broker ops: {broker_time:>8.2?}, {:4.1}%)",
            broker_time.as_secs_f64() / total.as_secs_f64() * 100.0
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "\nSame conclusion as the paper at any scale: a durable disk broker\n\
         charges orders of magnitude more per hand-off than shared memory,\n\
         and whether you need a broker at all depends on the rate mismatch."
    );
    Ok(())
}
