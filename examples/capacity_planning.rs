//! Capacity planning with the serving model: a practical use of the
//! paper's findings.
//!
//! Given a target workload (requests/second at a latency SLO), how many
//! server nodes do we need — and is it cheaper to add GPUs or to fix
//! preprocessing? This example sweeps node shapes with the calibrated
//! model and prints a recommendation table, exercising the multi-GPU
//! scaling result (Fig 9): for large-image workloads, extra GPUs buy
//! almost nothing because preprocessing is the bottleneck.
//!
//! Run with: `cargo run --release --example capacity_planning`

use vserve::prelude::*;

struct NodeShape {
    label: &'static str,
    gpus: usize,
    config: ServerConfig,
}

fn node_capacity(shape: &NodeShape, img: ImageSpec, slo_p99_ms: f64) -> (f64, usize) {
    // Find the highest concurrency whose p99 stays inside the SLO, then
    // report the throughput there (the paper's §4.3 operating-point hunt).
    let mut best = (0.0f64, 0usize);
    for concurrency in [16usize, 32, 64, 128, 256, 512] {
        let r = Experiment {
            node: NodeConfig::with_gpus(shape.gpus),
            config: shape.config.clone(),
            model: ModelProfile::vit_base(),
            mix: ImageMix::fixed(img),
            concurrency: concurrency * shape.gpus,
            warmup_s: 0.5,
            measure_s: 1.5,
            seed: 99,
        }
        .run();
        if r.latency.p99 * 1e3 <= slo_p99_ms && r.throughput > best.0 {
            best = (r.throughput, concurrency * shape.gpus);
        }
    }
    best
}

fn main() {
    let target_rps = 20_000.0;
    let slo_p99_ms = 150.0;

    let shapes = [
        NodeShape {
            label: "1 GPU, GPU preprocessing",
            gpus: 1,
            config: ServerConfig::optimized(),
        },
        NodeShape {
            label: "1 GPU, CPU preprocessing",
            gpus: 1,
            config: ServerConfig::optimized_cpu_preproc(),
        },
        NodeShape {
            label: "2 GPUs, GPU preprocessing",
            gpus: 2,
            config: ServerConfig::optimized(),
        },
        NodeShape {
            label: "4 GPUs, GPU preprocessing",
            gpus: 4,
            config: ServerConfig::optimized(),
        },
    ];

    for (img_label, img) in [
        ("medium", ImageSpec::medium()),
        ("large", ImageSpec::large()),
    ] {
        println!(
            "== workload: {target_rps:.0} img/s of {img_label} images, p99 <= {slo_p99_ms:.0} ms ==\n"
        );
        println!(
            "{:<28} {:>12} {:>12} {:>8} {:>14}",
            "node shape", "img/s @SLO", "clients", "nodes", "gpus total"
        );
        for shape in &shapes {
            let (capacity, clients) = node_capacity(shape, img, slo_p99_ms);
            if capacity <= 0.0 {
                println!("{:<28} {:>12} (cannot meet SLO)", shape.label, "-");
                continue;
            }
            let nodes = (target_rps / capacity).ceil() as usize;
            println!(
                "{:<28} {:>12.0} {:>12} {:>8} {:>14}",
                shape.label,
                capacity,
                clients,
                nodes,
                nodes * shape.gpus
            );
        }
        println!();
    }

    println!(
        "For medium images, GPUs scale almost linearly, so bigger nodes cut\n\
         node count. For large images, preprocessing is the bottleneck\n\
         (Fig 9): the 4-GPU node barely outperforms the 2-GPU node, so\n\
         provisioning more GPUs per node wastes accelerators."
    );
}
