//! Differential sim↔live suite pinned by request-level tracing.
//!
//! The live server and the discrete-event simulator describe the same
//! pipeline; these tests hold them to that. A seeded workload runs
//! through the *real* `LiveServer` (traced), the measured per-stage
//! costs calibrate a `ServerConfig` replay, and the per-stage time
//! *shares* must agree stage-by-stage — upgrading the old single-assert
//! smoke test (`live_preproc_share_grows_with_image_size`) into a full
//! breakdown comparison. The same trace infrastructure is pinned here
//! end-to-end: span sums reconcile with the bookkept `StageBreakdown`,
//! the chrome-trace export stays loadable, recording is structurally
//! deterministic, and the overhead of tracing stays within budget.

use std::time::{Duration, Instant};

use vserve_device::{CpuModel, GpuModel, ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_server::{stages, Experiment, ModelProfile, ServerConfig};
use vserve_trace::{chrome, Tracer};
use vserve_workload::{synthetic_jpeg, ImageMix};

const SIDE: usize = 32;

fn model(seed: u64) -> Model {
    Model::from_graph(models::micro_cnn(SIDE, 4).expect("valid graph"), seed)
}

/// Single-lane options: one worker per stage, batch 1, no batcher wait,
/// cache off — every request pays its own full preprocessing cost, so
/// live stage means are directly comparable with the simulator's
/// per-request charges.
fn single_lane(trace: Tracer) -> LiveOptions {
    LiveOptions {
        preproc_workers: 1,
        inference_workers: 1,
        max_batch: 1,
        max_queue_delay: Duration::ZERO,
        input_side: SIDE,
        backend_threads: 1,
        preproc_cache_mb: Some(0),
        coalesce: false,
        trace,
        ..LiveOptions::default()
    }
}

fn payload(w: usize, h: usize, seed: u64) -> Vec<u8> {
    synthetic_jpeg(&ImageSpec::new(w, h, 0), seed)
}

/// Measured live stage means for one image size on a fresh server.
struct LiveArm {
    queue_share: f64,
    preproc_share: f64,
    inference_share: f64,
    preproc_mean: f64,
    inference_mean: f64,
}

fn run_live_arm(w: usize, h: usize) -> LiveArm {
    // Warm caches and code paths on a throwaway server, then measure on
    // fresh ones so the breakdown holds only steady-state requests.
    let warm = LiveServer::start(model(13), single_lane(Tracer::disabled()));
    for i in 0..2u64 {
        warm.infer(payload(w, h, 900 + i)).expect("warm-up");
    }
    drop(warm);
    // A scheduler stall (a slow cross-thread wakeup) only ever *adds*
    // time, and one multi-millisecond stall can dominate a short arm's
    // queue mean. Run three independent arms and keep the least-stalled
    // one — the minimum-queue-share arm is the closest measurement of the
    // pipeline's steady state.
    let mut best: Option<LiveArm> = None;
    for arm in 0..3u64 {
        let server = LiveServer::start(model(13), single_lane(Tracer::disabled()));
        for i in 0..16u64 {
            server
                .infer(payload(w, h, 100 * (arm + 1) + i))
                .expect("infer");
        }
        let s = server.metrics().summary();
        let cand = LiveArm {
            queue_share: s.queue_share(),
            preproc_share: s.preproc_share(),
            inference_share: s.inference_share(),
            preproc_mean: s.breakdown.mean(stages::PREPROC),
            inference_mean: s.breakdown.mean(stages::INFERENCE),
        };
        if best
            .as_ref()
            .map_or(true, |b| cand.queue_share < b.queue_share)
        {
            best = Some(cand);
        }
    }
    best.expect("at least one arm")
}

/// A simulator node calibrated so a request costs exactly the live
/// server's measured mean preprocessing and inference time: every
/// per-pixel/per-byte coefficient is zeroed and the measured means are
/// planted as the fixed per-request costs. Dispatch and staging are made
/// negligible — the live path has no analogue of either at batch 1.
fn calibrated_node(preproc_s: f64, inference_s: f64) -> NodeConfig {
    let testbed = NodeConfig::paper_testbed();
    NodeConfig {
        cpu: CpuModel {
            decode_fixed_s: preproc_s,
            decode_s_per_px: 0.0,
            decode_s_per_byte: 0.0,
            resize_s_per_src_px: 0.0,
            resize_s_per_dst_px: 0.0,
            normalize_s_per_px: 0.0,
            dispatch_fixed_s: 1e-9,
            dispatch_s_per_byte: 0.0,
            staging_bytes_per_s: 1e18,
            rpc_fixed_s: 0.0,
            serialize_bytes_per_s: 1e18,
            ..testbed.cpu
        },
        gpu: GpuModel {
            launch_s: inference_s,
            peak_flops: 1e18,
            batch_half_sat: 1e-6,
            pcie_bytes_per_s: 1e18,
            interference: 0.0,
            ..testbed.gpu
        },
        gpu_count: 1,
    }
}

fn calibrated_sim(w: usize, h: usize, live: &LiveArm) -> Experiment {
    Experiment {
        node: calibrated_node(live.preproc_mean, live.inference_mean),
        config: ServerConfig {
            preproc_workers: 1,
            instances_per_gpu: 1,
            max_batch: 1,
            max_queue_delay_s: 1e-6,
            ..ServerConfig::optimized_cpu_preproc()
        },
        model: ModelProfile::new("live-micro", 1.0, SIDE),
        mix: ImageMix::fixed(ImageSpec::new(w, h, 0)),
        concurrency: 1,
        warmup_s: 0.3,
        measure_s: 3.0,
        seed: 77,
    }
}

/// The tentpole differential assertion: for three image sizes, the live
/// server's per-stage time shares and a calibrated sim replay's shares
/// agree stage-by-stage, and *both* reproduce the paper's headline shape
/// (preprocessing share grows with image size).
#[test]
fn sim_and_live_stage_shares_agree_stage_by_stage() {
    const TOL: f64 = 0.12;
    let sizes = [(96usize, 80usize), (400, 300), (1280, 960)];
    let mut live_pre = Vec::new();
    let mut sim_pre = Vec::new();
    for &(w, h) in &sizes {
        let live = run_live_arm(w, h);
        let sim = calibrated_sim(w, h, &live).run();
        let pairs = [
            ("queue", live.queue_share, sim.queue_share()),
            ("preproc", live.preproc_share, sim.preproc_share()),
            ("inference", live.inference_share, sim.inference_share()),
        ];
        for (name, l, s) in pairs {
            assert!(
                (l - s).abs() < TOL,
                "{w}x{h} {name} share: live {l:.3} vs sim {s:.3}"
            );
        }
        live_pre.push(live.preproc_share);
        sim_pre.push(sim.preproc_share());
    }
    assert!(
        live_pre[0] < live_pre[1] && live_pre[1] < live_pre[2],
        "live preproc share must grow with image size: {live_pre:?}"
    );
    assert!(
        sim_pre[0] < sim_pre[1] && sim_pre[1] < sim_pre[2],
        "sim preproc share must grow with image size: {sim_pre:?}"
    );
}

/// Span sums reconcile with the bookkept breakdown: for a shed-free
/// traced run, the per-stage sum of recorded spans equals the
/// `StageBreakdown` total (same `Instant`s, floating rounding only), and
/// span counts match the documented cardinalities (two queue spans per
/// request: ingress wait + batch wait).
#[test]
fn trace_spans_reconcile_with_live_breakdown() {
    let tracer = Tracer::with_capacity(1 << 16);
    let server = LiveServer::start(model(13), single_lane(tracer.clone()));
    let n = 30u64;
    for i in 0..n {
        server.infer(payload(200, 150, 500 + i)).expect("infer");
    }
    let m = server.metrics();
    assert_eq!(m.completed, n);
    // Dropping the server joins every worker thread, so the snapshot is
    // guaranteed to hold the full run (the respond event of the final
    // batch is recorded after its replies are sent).
    drop(server);
    let snap = tracer.snapshot();
    assert_eq!(snap.dropped, 0, "ring must not drop in a sized run");
    for stage in [stages::QUEUE, stages::PREPROC, stages::INFERENCE] {
        let spans = snap.stage_total(stage);
        let book = m.breakdown.total(stage);
        assert!(
            (spans - book).abs() <= 1e-6 * book.max(1e-9) + 1e-9,
            "{stage}: span sum {spans:.9} vs breakdown {book:.9}"
        );
    }
    assert_eq!(snap.stage_count(stages::QUEUE), 2 * n);
    assert_eq!(snap.stage_count(stages::PREPROC), n);
    assert_eq!(snap.stage_count(stages::INFERENCE), n);
}

/// The chrome-trace export of a real run parses as strict JSON and never
/// contains NaN or negative timestamps/durations.
#[test]
fn chrome_export_of_live_run_is_loadable() {
    let tracer = Tracer::with_capacity(1 << 14);
    let server = LiveServer::start(model(13), single_lane(tracer.clone()));
    for i in 0..8u64 {
        server.infer(payload(160, 120, 700 + i)).expect("infer");
    }
    drop(server); // join workers: snapshot sees the complete run
    let json = chrome::chrome_trace_json(&tracer.snapshot());
    chrome::validate_json(&json).expect("chrome trace must be valid JSON");
    assert!(json.contains("\"traceEvents\""));
    assert!(!json.contains("NaN"));
    assert!(!json.contains("\"ts\":-"));
    assert!(!json.contains("\"dur\":-"));
}

/// Structural view of one span: what happened, where, in which batch —
/// everything except wall-clock times, which legitimately vary.
type SpanShape = (u64, &'static str, String, u64, u64);

fn structural_run(seed: u64) -> (usize, Vec<SpanShape>) {
    let tracer = Tracer::with_capacity(1 << 14);
    let server = LiveServer::start(model(seed), single_lane(tracer.clone()));
    for i in 0..10u64 {
        server.infer(payload(120, 90, 300 + i)).expect("infer");
    }
    drop(server); // join workers: snapshot sees the complete run
    let snap = tracer.snapshot();
    let mut shape: Vec<SpanShape> = snap
        .spans
        .iter()
        .map(|s| {
            (
                s.request_id,
                s.stage,
                snap.thread_name(s.thread).unwrap_or("?").to_owned(),
                s.batch_id,
                u64::from(s.is_event()),
            )
        })
        .collect();
    // Wall-clock order of equal-time neighbors can vary; the structural
    // identity is the multiset keyed by request, stage, and batch.
    shape.sort();
    (snap.spans.len(), shape)
}

/// Golden-trace determinism: the same seeded workload on a single-lane
/// server records a structurally identical span tree on every run — same
/// span count, same stages per request, same thread names and batch ids.
#[test]
fn golden_trace_is_structurally_deterministic() {
    let (count_a, shape_a) = structural_run(13);
    let (count_b, shape_b) = structural_run(13);
    assert_eq!(count_a, count_b, "span count must be deterministic");
    assert_eq!(shape_a, shape_b, "span structure must be deterministic");
    // Spot-check the expected cardinalities: 10 requests on a batch-1
    // lane → 10 batch-flush events with batch ids 1..=10.
    let flushes: Vec<u64> = shape_a
        .iter()
        .filter(|s| s.1 == "batch-flush")
        .map(|s| s.3)
        .collect();
    assert_eq!(flushes, (1..=10).collect::<Vec<u64>>());
}

/// Tracing-overhead regression: with the ring enabled, pipelined
/// throughput stays within 3% of the disabled baseline (best-of-five
/// interleaved rounds to damp scheduler noise; the whole comparison
/// retries up to three times because single-core CI boxes still flake
/// past best-of-five — a real overhead regression fails every attempt).
#[test]
fn tracing_overhead_within_three_percent() {
    let payloads: Vec<Vec<u8>> = (0..120u64).map(|i| payload(256, 192, i)).collect();
    let opts = |trace: Tracer| LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 4,
        max_queue_delay: Duration::from_micros(500),
        input_side: SIDE,
        backend_threads: 1,
        preproc_cache_mb: Some(0),
        coalesce: false,
        trace,
        ..LiveOptions::default()
    };
    let run = |trace: Tracer| -> f64 {
        let server = LiveServer::start(model(13), opts(trace));
        for p in &payloads[..8] {
            server.infer(p.clone()).expect("warm-up");
        }
        let t0 = Instant::now();
        let pending: Vec<_> = payloads
            .iter()
            .map(|p| server.submit_with_deadline(p.clone(), None))
            .collect();
        for rx in pending {
            rx.recv().expect("reply").expect("infer");
        }
        payloads.len() as f64 / t0.elapsed().as_secs_f64()
    };
    let mut last = (0.0f64, 0.0f64);
    for attempt in 0..3 {
        // Fresh bests per attempt: one lucky spike in the disabled arm
        // must not set a bar every later attempt has to clear.
        let mut best_off: f64 = 0.0;
        let mut best_on: f64 = 0.0;
        for _ in 0..5 {
            best_off = best_off.max(run(Tracer::disabled()));
            best_on = best_on.max(run(Tracer::with_capacity(1 << 16)));
        }
        if best_on >= 0.97 * best_off {
            return;
        }
        eprintln!(
            "attempt {attempt}: enabled {best_on:.1} rps vs disabled {best_off:.1} rps, retrying"
        );
        last = (best_on, best_off);
    }
    panic!(
        "tracing overhead over budget: enabled {:.1} rps vs disabled {:.1} rps",
        last.0, last.1
    );
}
