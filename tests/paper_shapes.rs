//! Cross-crate integration tests asserting the paper's qualitative
//! results hold end-to-end through the public API, at reduced scale.

use vserve::prelude::*;

fn base(config: ServerConfig, img: ImageSpec, concurrency: usize) -> Experiment {
    Experiment {
        node: NodeConfig::paper_testbed(),
        config,
        model: ModelProfile::vit_base(),
        mix: ImageMix::fixed(img),
        concurrency,
        warmup_s: 0.3,
        measure_s: 1.0,
        seed: 1234,
    }
}

/// §4.2 / Fig 6: preprocessing's share of zero-load latency grows with
/// image size, for both preprocessing locations.
#[test]
fn preproc_share_grows_with_image_size() {
    for config in [
        ServerConfig::optimized(),
        ServerConfig::optimized_cpu_preproc(),
    ] {
        let shares: Vec<f64> = [ImageSpec::small(), ImageSpec::medium(), ImageSpec::large()]
            .into_iter()
            .map(|img| base(config.clone(), img, 1).zero_load().preproc_share())
            .collect();
        assert!(
            shares[0] < shares[1] && shares[1] < shares[2],
            "shares not monotone: {shares:?} ({config:?})"
        );
        assert!(shares[2] > 0.6, "large-image share {:.2}", shares[2]);
    }
}

/// §4.1 / Fig 4: the inference share of latency increases with model
/// FLOPs; sub-5-GFLOP models are dominated by overheads.
#[test]
fn inference_share_increases_with_flops() {
    let mut shares = Vec::new();
    for model in [
        ModelProfile::tiny_vit(),
        ModelProfile::resnet50(),
        ModelProfile::vit_base(),
    ] {
        let r = Experiment {
            model,
            ..base(ServerConfig::optimized(), ImageSpec::medium(), 96)
        }
        .run();
        shares.push(r.inference_share());
    }
    assert!(
        shares[0] < shares[1] && shares[1] < shares[2],
        "shares {shares:?}"
    );
    // TinyViT (1.3 GFLOPs) is overhead-dominated.
    assert!(shares[0] < 0.5, "tinyvit inference share {:.2}", shares[0]);
}

/// §4.3 / Fig 5: queueing time dominates round-trip latency at high
/// concurrency.
#[test]
fn queueing_dominates_at_high_concurrency() {
    let r = base(ServerConfig::optimized(), ImageSpec::medium(), 1024).run();
    assert!(
        r.queue_share() > 0.6,
        "queue share {:.2} at concurrency 1024",
        r.queue_share()
    );
}

/// §4.4 / Fig 7: for a small model, end-to-end (compressed upload) beats
/// inference-only (raw tensor upload) because of the transfer gap.
#[test]
fn small_model_e2e_beats_inference_only() {
    let e2e = Experiment {
        model: ModelProfile::tiny_vit(),
        ..base(ServerConfig::optimized(), ImageSpec::medium(), 192)
    }
    .run();
    let inf_only = Experiment {
        model: ModelProfile::tiny_vit(),
        ..base(
            ServerConfig::optimized().with_stage_mode(StageMode::InferenceOnly),
            ImageSpec::medium(),
            192,
        )
    }
    .run();
    assert!(
        e2e.throughput > inf_only.throughput,
        "e2e {:.0} vs inference-only {:.0}",
        e2e.throughput,
        inf_only.throughput
    );
}

/// §4.6 / Fig 9: adding GPUs helps medium-image serving far more than
/// large-image serving (preprocessing bound).
#[test]
fn multi_gpu_helps_medium_not_large() {
    let run = |img: ImageSpec, gpus: usize| {
        Experiment {
            node: NodeConfig::with_gpus(gpus),
            concurrency: 192 * gpus,
            ..base(ServerConfig::optimized(), img, 0)
        }
        .run()
        .throughput
    };
    let medium_scale = run(ImageSpec::medium(), 4) / run(ImageSpec::medium(), 1);
    let large_scale = run(ImageSpec::large(), 4) / run(ImageSpec::large(), 1);
    assert!(medium_scale > 3.0, "medium 4-GPU scaling {medium_scale:.2}");
    assert!(large_scale < 3.0, "large 4-GPU scaling {large_scale:.2}");
    assert!(medium_scale > large_scale);
}

/// §4.5 / Fig 8: CPU preprocessing burns more total energy per image for
/// the paper's primary model.
#[test]
fn cpu_preproc_energy_cost() {
    let cpu = base(
        ServerConfig::optimized_cpu_preproc(),
        ImageSpec::medium(),
        96,
    )
    .run();
    let gpu = base(ServerConfig::optimized(), ImageSpec::medium(), 96).run();
    assert!(
        cpu.energy.total_j_per_image() > gpu.energy.total_j_per_image(),
        "cpu {:.3} vs gpu {:.3} J/img",
        cpu.energy.total_j_per_image(),
        gpu.energy.total_j_per_image()
    );
}

/// §4.7 / Fig 11: the three headline broker results.
#[test]
fn broker_results_reproduce() {
    let node = NodeConfig::paper_testbed();
    let run = |broker: BrokerKind, k: u64, c: usize| {
        PipelineExperiment {
            node,
            broker,
            faces: FacesPerFrame::fixed(k),
            concurrency: c,
            warmup_s: 0.3,
            measure_s: 1.0,
            seed: 5,
        }
        .run()
    };
    // Redis-like beats Kafka-like by roughly the paper's 2.25x at 25 faces.
    let redis = run(BrokerKind::RedisLike, 25, 64);
    let kafka = run(BrokerKind::KafkaLike, 25, 64);
    let ratio = redis.frame_throughput / kafka.frame_throughput;
    assert!((1.7..3.2).contains(&ratio), "redis/kafka {ratio:.2}");
    // Fused wins at 2 faces, loses at 25.
    let fused_small = run(BrokerKind::Fused, 2, 64);
    let redis_small = run(BrokerKind::RedisLike, 2, 64);
    assert!(fused_small.frame_throughput > redis_small.frame_throughput);
    let fused_big = run(BrokerKind::Fused, 25, 64);
    assert!(redis.frame_throughput > fused_big.frame_throughput);
}

/// The model zoo spans the Fig 4 range and its FLOPs come from real graph
/// definitions that match published numbers.
#[test]
fn zoo_is_published_accurate() {
    let zoo = vserve::zoo::build();
    assert!(zoo.len() >= 18);
    for e in &zoo {
        if let Some(p) = e.published_gflops {
            assert!(
                (e.gflops - p).abs() / p < 0.15,
                "{}: {:.2} vs {:.2}",
                e.name,
                e.gflops,
                p
            );
        }
    }
}

/// Experiments are bit-reproducible across runs with equal seeds and
/// diverge across seeds.
#[test]
fn determinism_and_seed_sensitivity() {
    let a = base(ServerConfig::optimized(), ImageSpec::medium(), 64).run();
    let b = base(ServerConfig::optimized(), ImageSpec::medium(), 64).run();
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.completed, b.completed);
    let c = Experiment {
        seed: 4321,
        ..base(ServerConfig::optimized(), ImageSpec::medium(), 64)
    }
    .run();
    assert_ne!(a.latency, c.latency);
}

/// Multi-tenant lane config for the sim-mirror tests below.
fn two_lane_config(lc_prio: Priority, lc_weight: f64) -> ServerConfig {
    ServerConfig {
        tenants: vec![
            TenantSpec::new("lc", "vit-base")
                .priority(lc_prio)
                .weight(lc_weight),
            TenantSpec::new("be", "vit-base").priority(Priority::Low),
        ],
        ..ServerConfig::optimized()
    }
}

/// Multi-tenant sim replays are deterministic: identical config + seed
/// reproduce identical per-lane rows, and single-lane reports keep an
/// empty lane table.
#[test]
fn multi_tenant_replay_is_deterministic() {
    let run = || base(two_lane_config(Priority::High, 1.0), ImageSpec::small(), 64).run();
    let a = run();
    let b = run();
    assert_eq!(a.lanes, b.lanes, "lane rows diverged across replays");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.lanes.len(), 2);
    assert_eq!(a.lanes[0].name, "lc");
    assert_eq!(a.lanes[1].name, "be");
    assert!(a.lanes[0].completed > 0 && a.lanes[1].completed > 0);
    assert!(
        (a.lanes[0].completed + a.lanes[1].completed) <= a.completed + 2,
        "lane completions exceed total"
    );

    let solo = base(ServerConfig::optimized(), ImageSpec::small(), 64).run();
    assert!(solo.lanes.is_empty(), "single-lane report grew lane rows");
}

/// Co-locating a best-effort tenant inflates the latency-critical lane's
/// queueing versus serving it alone — the sim twin of the live
/// interference-attribution test.
#[test]
fn best_effort_lane_inflates_lc_queueing_in_sim() {
    let solo = base(ServerConfig::optimized(), ImageSpec::small(), 32).run();
    let co = base(two_lane_config(Priority::High, 1.0), ImageSpec::small(), 64).run();
    let lc = &co.lanes[0];
    assert!(lc.completed > 0);
    assert!(
        lc.mean_queue_s > solo.queue_time(),
        "co-located LC queue {:.6}s not above solo {:.6}s",
        lc.mean_queue_s,
        solo.queue_time()
    );
    // Strict priority still shields the LC lane relative to the BE lane.
    assert!(
        lc.mean_queue_s < co.lanes[1].mean_queue_s,
        "LC queue {:.6}s not below BE queue {:.6}s",
        lc.mean_queue_s,
        co.lanes[1].mean_queue_s
    );
}

/// Within one priority class, the heavier-weighted lane sees less
/// queueing at saturation: DRR credit is proportional to weight.
#[test]
fn heavier_weight_lane_queues_less_in_sim() {
    let r = base(
        two_lane_config(Priority::Normal, 4.0),
        ImageSpec::small(),
        128,
    )
    .run();
    assert!(r.lanes[0].completed > 0 && r.lanes[1].completed > 0);
    assert!(
        r.lanes[0].mean_queue_s < r.lanes[1].mean_queue_s,
        "weight-4 lane queue {:.6}s not below weight-1 lane {:.6}s",
        r.lanes[0].mean_queue_s,
        r.lanes[1].mean_queue_s
    );
}
