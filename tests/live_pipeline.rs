//! Integration tests of the *real* substrates wired together: JPEG codec
//! → live server → broker → second live server, all actual execution.

use std::sync::Arc;
use std::time::Duration;

use vserve_broker::{Broker, FsyncPolicy, LogBroker, MemBroker};
use vserve_device::ImageSpec;
use vserve_dnn::{models, Model};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_workload::synthetic_jpeg;

fn live(side: usize, classes: usize, seed: u64) -> LiveServer {
    LiveServer::start(
        Model::from_graph(models::micro_cnn(side, classes).expect("valid graph"), seed),
        LiveOptions {
            preproc_workers: 2,
            inference_workers: 1,
            max_batch: 4,
            max_queue_delay: Duration::from_millis(1),
            input_side: side,
            ..LiveOptions::default()
        },
    )
}

/// Full two-stage pipeline over the in-memory broker: every face published
/// by stage 1 is identified by stage 2.
#[test]
fn two_stage_pipeline_over_mem_broker() {
    let detector = live(32, 4, 1);
    let identifier = live(32, 8, 2);
    let broker = Arc::new(MemBroker::new());

    let frames = 6;
    let faces_per_frame = 3;
    let frame = synthetic_jpeg(&ImageSpec::new(96, 96, 0), 9);
    let crop = synthetic_jpeg(&ImageSpec::new(40, 40, 0), 10);

    for f in 0..frames {
        let det = detector.infer(frame.clone()).expect("detector answers");
        assert_eq!(det.output.len(), 4);
        for c in 0..faces_per_frame {
            broker
                .publish("faces", &crop)
                .unwrap_or_else(|e| panic!("publish frame {f} crop {c}: {e}"));
        }
    }
    assert_eq!(broker.depth("faces", "id"), frames * faces_per_frame);

    let mut identified = 0;
    while broker.depth("faces", "id") > 0 {
        for msg in broker.fetch("faces", "id", 4).expect("fetch") {
            let r = identifier.infer(msg.to_vec()).expect("identifier answers");
            assert_eq!(r.output.len(), 8);
            identified += 1;
        }
    }
    assert_eq!(identified, frames * faces_per_frame);
}

/// The same pipeline over the disk-backed broker survives a broker
/// restart mid-stream (offsets and records recover from the segments).
#[test]
fn pipeline_survives_log_broker_restart() {
    let dir = std::env::temp_dir().join(format!("vserve-it-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let crop = synthetic_jpeg(&ImageSpec::new(32, 32, 0), 5);

    {
        let broker = LogBroker::open(&dir, FsyncPolicy::PerMessage).expect("open");
        for _ in 0..5 {
            broker.publish("faces", &crop).expect("publish");
        }
        // Consume two before the "crash".
        let got = broker.fetch("faces", "id", 2).expect("fetch");
        assert_eq!(got.len(), 2);
    }

    // Restart: records persist; group offsets are broker-local state, so
    // the consumer re-reads from the start (at-least-once delivery).
    let broker = LogBroker::open(&dir, FsyncPolicy::PerMessage).expect("reopen");
    assert_eq!(broker.len("faces"), 5);
    let identifier = live(32, 6, 3);
    let all = broker
        .fetch("faces", "id", 100)
        .expect("fetch after restart");
    assert_eq!(all.len(), 5);
    for msg in all {
        let r = identifier.infer(msg.to_vec()).expect("identify");
        assert_eq!(r.output.len(), 6);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Live measured stage times behave like the paper's: a much larger JPEG
/// costs much more preprocessing but identical inference.
#[test]
fn live_preproc_scales_with_image_inference_does_not() {
    let server = live(32, 4, 7);
    let small = synthetic_jpeg(&ImageSpec::new(64, 64, 0), 1);
    let big = synthetic_jpeg(&ImageSpec::new(640, 480, 0), 2);

    // Median of several runs to damp scheduler noise.
    let measure = |jpeg: &[u8]| {
        let mut pre: Vec<f64> = (0..5)
            .map(|_| {
                server
                    .infer(jpeg.to_vec())
                    .expect("infer")
                    .preproc
                    .as_secs_f64()
            })
            .collect();
        pre.sort_by(|a, b| a.total_cmp(b));
        pre[2]
    };
    let _ = measure(&small); // warm-up
    let pre_small = measure(&small);
    let pre_big = measure(&big);
    assert!(
        pre_big > 5.0 * pre_small,
        "preproc small {pre_small:.6}s vs big {pre_big:.6}s"
    );
}

// The old `live_preproc_share_grows_with_image_size` smoke test (a
// single monotonicity assert over per-request preproc shares) was
// upgraded into the full stage-by-stage differential comparison in
// `tests/trace_differential.rs::sim_and_live_stage_shares_agree_stage_by_stage`,
// which checks queue/preproc/inference shares against a calibrated sim
// replay at three image sizes *and* keeps the monotonicity assertion for
// both the live server and the sim.

/// Concurrent clients hammering the live server all get correct answers.
#[test]
fn live_server_under_concurrency() {
    let server = Arc::new(live(32, 10, 11));
    let mut handles = Vec::new();
    for t in 0..4 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                let jpeg = synthetic_jpeg(&ImageSpec::new(48, 48, 0), t * 100 + i);
                let r = server.infer(jpeg).expect("infer");
                assert_eq!(r.output.len(), 10);
                let sum: f32 = r.output.iter().sum();
                assert!((sum - 1.0).abs() < 1e-3);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }
}
