//! Live↔sim cascade differential suite (DESIGN §16).
//!
//! The live `PipelineRunner` executes a detect→identify cascade over a
//! real zoo server; its measured per-stage costs calibrate a
//! `PipeCosts` replay through the discrete-event pipeline model. The
//! per-stage time *shares* must then agree row by row at three fan-out
//! levels, under the live↔sim stage mapping:
//!
//! | live (runner breakdown)      | sim (`pipeline_stages`) |
//! |------------------------------|-------------------------|
//! | `det` service + `queue:det`  | `0-detect`              |
//! | `id` service + `queue:id`    | `2-identify`            |
//! | `fanout` + `join`            | `1-broker` (hand-off)   |
//! | `queue` minus stage waits    | `3-queue`               |
//!
//! Stage waits map to stage cost, not queueing: the fused sim at
//! concurrency 1 serializes each cascade, so a sibling crop waiting on
//! a busy inference worker is part of that stage's cost there, while
//! the live server measures the same wait as a queue span. The runner's
//! `queue:<stage>` rows attribute each sub-request's wait to its spec
//! stage; what remains of `queue` after removing them is frame-level
//! queueing — zero on both sides at concurrency 1.
//!
//! The same runs pin the trace contract: per-request span trees
//! reconcile with the bookkept breakdown, span cardinalities match the
//! documented counts, and the parent `pipeline` span covers every child
//! span recorded under its trace id.

use std::time::Duration;

use vserve_broker::BrokerKind;
use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_pipeline::{
    pipeline_stages, PipeCosts, PipelineExperiment, PipelineRunner, PipelineSpec, PIPELINE_SPAN,
};
use vserve_server::live::{LiveOptions, LiveServer, ZooModel};
use vserve_server::stages;
use vserve_trace::Tracer;
use vserve_workload::{synthetic_jpeg, FacesPerFrame};

const SIDE: usize = 32;
const TOL: f64 = 0.12;

fn zoo(trace: Tracer) -> LiveServer {
    let model = |seed| Model::from_graph(models::micro_cnn(SIDE, 4).expect("valid graph"), seed);
    LiveServer::start_zoo(
        vec![
            ZooModel {
                name: "det".to_owned(),
                model: model(11),
                input_side: SIDE,
            },
            ZooModel {
                name: "id".to_owned(),
                model: model(22),
                input_side: SIDE,
            },
        ],
        LiveOptions {
            // Sibling crops may still wait on busy workers; the runner
            // attributes that wait to its stage (`queue:<stage>` rows),
            // which the mapping folds into stage cost like the sim does.
            preproc_workers: 4,
            inference_workers: 2,
            max_batch: 8,
            max_queue_delay: Duration::ZERO,
            input_side: SIDE,
            backend_threads: 1,
            preproc_cache_mb: Some(0),
            coalesce: false,
            trace,
            ..LiveOptions::default()
        },
    )
    .expect("zoo server")
}

fn frame(seed: u64) -> Vec<u8> {
    synthetic_jpeg(&ImageSpec::new(256, 192, 0), seed)
}

/// Measured per-pipeline stage means of one live cascade arm.
struct CascadeArm {
    det: f64,
    id: f64,
    handoff: f64,
    queue: f64,
}

impl CascadeArm {
    fn total(&self) -> f64 {
        self.det + self.id + self.handoff + self.queue
    }
}

/// Runs the live cascade at fan-out `k` and returns per-pipeline stage
/// means. Best-of-three fresh arms by minimum total: a scheduler stall
/// only ever *adds* time (to whichever stage's wait it lands in), so
/// the cheapest arm is the closest measurement of steady state (same
/// policy as the single-model differential suite).
fn run_live_arm(k: u32) -> CascadeArm {
    let mut best: Option<CascadeArm> = None;
    for arm in 0..3u64 {
        let server = zoo(Tracer::disabled());
        // Warm codec, model, and thread-pool paths on a throwaway runner.
        let warm = PipelineRunner::new(
            server.pipeline_handle(),
            PipelineSpec::chain("faces", "det", "id", k),
        )
        .expect("warm runner");
        for i in 0..3u64 {
            warm.infer(frame(900 + i)).expect("warm cascade");
        }
        drop(warm);
        let runner = PipelineRunner::new(
            server.pipeline_handle(),
            PipelineSpec::chain("faces", "det", "id", k),
        )
        .expect("runner");
        for i in 0..10u64 {
            runner.infer(frame(100 * (arm + 1) + i)).expect("cascade");
        }
        let s = runner.stats();
        assert_eq!(s.completed, 10);
        assert_eq!(s.spawned, s.retired);
        let b = &s.breakdown;
        // Stage wait + stage compute ↔ sim stage cost (see module docs);
        // the queue row's remainder is frame-level queueing only.
        let cand = CascadeArm {
            det: b.mean("det") + b.mean("queue:det"),
            id: b.mean("id") + b.mean("queue:id"),
            handoff: b.mean("fanout") + b.mean("join"),
            queue: (b.mean("queue") - b.mean("queue:det") - b.mean("queue:id")).max(0.0),
        };
        if best.as_ref().map_or(true, |b| cand.total() < b.total()) {
            best = Some(cand);
        }
    }
    best.expect("at least one arm")
}

/// Replays the measured live costs through the discrete-event pipeline
/// (fused coupling — the in-process executor has no broker) at the same
/// fan-out level.
fn calibrated_sim(k: u32) -> PipelineExperiment {
    PipelineExperiment {
        node: NodeConfig::paper_testbed(),
        broker: BrokerKind::Fused,
        faces: FacesPerFrame::fixed(k as u64),
        concurrency: 1,
        warmup_s: 0.2,
        measure_s: 1.0,
        seed: 7,
    }
}

/// The tentpole differential: live cascade stage shares vs the
/// calibrated sim replay agree within |Δ| < 0.12 per mapped stage at
/// K ∈ {1, 4, 8}, and both sides agree that the identify share grows
/// with fan-out.
#[test]
fn cascade_stage_shares_agree_live_vs_sim() {
    let mut live_id_shares = Vec::new();
    let mut sim_id_shares = Vec::new();
    for k in [1u32, 4, 8] {
        let live = run_live_arm(k);
        let costs = PipeCosts {
            det_s: live.det,
            id_face_s: live.id / k as f64,
            handoff_s: live.handoff,
            exit_rate: 0.0,
        };
        let r = calibrated_sim(k).run_with_costs(costs);
        let sim_total: f64 = [
            pipeline_stages::DETECT,
            pipeline_stages::BROKER,
            pipeline_stages::IDENTIFY,
            pipeline_stages::QUEUE,
        ]
        .iter()
        .map(|s| r.breakdown.mean(s))
        .sum();
        let live_total = live.total();
        let pairs = [
            (
                "detect",
                live.det / live_total,
                r.breakdown.mean(pipeline_stages::DETECT) / sim_total,
            ),
            (
                "handoff",
                live.handoff / live_total,
                r.breakdown.mean(pipeline_stages::BROKER) / sim_total,
            ),
            (
                "identify",
                live.id / live_total,
                r.breakdown.mean(pipeline_stages::IDENTIFY) / sim_total,
            ),
            (
                "queue",
                live.queue / live_total,
                r.breakdown.mean(pipeline_stages::QUEUE) / sim_total,
            ),
        ];
        for (name, l, s) in pairs {
            assert!(
                (l - s).abs() < TOL,
                "k={k} {name} share: live {l:.3} vs sim {s:.3}"
            );
        }
        live_id_shares.push(live.id / live_total);
        sim_id_shares.push(r.breakdown.mean(pipeline_stages::IDENTIFY) / sim_total);
    }
    assert!(
        live_id_shares[0] < live_id_shares[2],
        "live identify share must grow with fan-out: {live_id_shares:?}"
    );
    assert!(
        sim_id_shares[0] < sim_id_shares[2],
        "sim identify share must grow with fan-out: {sim_id_shares:?}"
    );
}

/// Span-tree contract of a traced cascade run at K = 4:
///
/// * pinned cardinalities per pipeline — 5 sub-requests (root + 4
///   children) × (2 queue + 1 preproc + 1 inference) spans, plus one
///   fan-out, one join, and one parent `pipeline` span;
/// * per-stage span sums reconcile with the server's bookkept breakdown;
/// * the parent span covers every child span under its trace id.
#[test]
fn cascade_span_trees_reconcile_with_breakdown() {
    const K: u32 = 4;
    const N: u64 = 5;
    let nodes = 1 + K as u64;
    let tracer = Tracer::with_capacity(1 << 16);
    let server = zoo(tracer.clone());
    let runner = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("faces", "det", "id", K),
    )
    .expect("runner");
    for i in 0..N {
        let r = runner.infer(frame(40 + i)).expect("cascade");
        assert_eq!(r.batch_size, nodes as usize);
    }
    let m = server.metrics();
    assert_eq!(m.completed, N * nodes, "every sub-request completes");
    // Joining the workers guarantees the snapshot holds the full run.
    drop(runner);
    drop(server);
    let snap = tracer.snapshot();
    assert_eq!(snap.dropped, 0, "ring must not drop in a sized run");

    // Cardinalities: per sub-request two queue spans (ingress + batch
    // wait), one preproc, one inference; per pipeline one fan-out (the
    // single spawning node), one join, one parent span.
    assert_eq!(snap.stage_count(stages::QUEUE), 2 * N * nodes);
    assert_eq!(snap.stage_count(stages::PREPROC), N * nodes);
    assert_eq!(snap.stage_count(stages::INFERENCE), N * nodes);
    assert_eq!(snap.stage_count(stages::FANOUT), N);
    assert_eq!(snap.stage_count(stages::JOIN), N);
    assert_eq!(snap.stage_count(PIPELINE_SPAN), N);

    // Span sums reconcile with the bookkept breakdown, cascade rows
    // included (fan-out/join spans and rows come from the same clock
    // reads; floating rounding only).
    for stage in [
        stages::QUEUE,
        stages::PREPROC,
        stages::INFERENCE,
        stages::FANOUT,
        stages::JOIN,
    ] {
        let spans = snap.stage_total(stage);
        let book = m.breakdown.total(stage);
        assert!(
            (spans - book).abs() <= 1e-6 * book.max(1e-9) + 1e-9,
            "{stage}: span sum {spans:.9} vs breakdown {book:.9}"
        );
    }
    // Cascade rows exist for both spec stages, and the per-stage span
    // service (preproc + inference) of the run equals their sum.
    let det_row = m.breakdown.total(&stages::cascade_stage("faces", "det"));
    let id_row = m.breakdown.total(&stages::cascade_stage("faces", "id"));
    assert!(det_row > 0.0 && id_row > 0.0, "cascade rows recorded");
    let service = snap.stage_total(stages::PREPROC) + snap.stage_total(stages::INFERENCE);
    assert!(
        (det_row + id_row - service).abs() <= 1e-6 * service + 1e-9,
        "cascade rows {det_row:.9}+{id_row:.9} vs span service {service:.9}"
    );

    // Parent/child flow linkage: each pipeline span's trace id groups
    // exactly one span tree, and the parent interval covers every child.
    let parents: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.stage == PIPELINE_SPAN)
        .collect();
    for p in &parents {
        assert!(p.request_id != 0, "pipeline span must carry its trace id");
        for s in snap
            .spans
            .iter()
            .filter(|s| s.request_id == p.request_id && s.stage != PIPELINE_SPAN && !s.is_event())
        {
            assert!(
                s.t_start >= p.t_start - 1e-9 && s.t_end <= p.t_end + 1e-9,
                "span {} [{:.9}, {:.9}] escapes its pipeline span [{:.9}, {:.9}]",
                s.stage,
                s.t_start,
                s.t_end,
                p.t_start,
                p.t_end
            );
        }
    }
    // Distinct pipelines, distinct trace ids.
    let mut ids: Vec<u64> = parents.iter().map(|p| p.request_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), N as usize, "one trace id per pipeline");
}
