//! End-to-end loopback tests for the `vserve-net` TCP front-end.
//!
//! The contract under test: putting a real socket between client and
//! server adds measurable transfer/deserialize stages but changes
//! *nothing else* — the classification output must be bit-identical to
//! the in-process `LiveServer`, overload must surface as typed status
//! frames (not dropped connections), and no sequence of hostile bytes may
//! take the server down.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use vserve_dnn::{models, Model};
use vserve_net::{ClientOptions, NetClient, NetError, NetOptions, NetServer, Status};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_workload::synthetic_jpeg;

const SIDE: usize = 32;
const SEED: u64 = 21;

fn model() -> Model {
    Model::from_graph(models::micro_cnn(SIDE, 10).expect("graph"), SEED)
}

fn opts() -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 4,
        max_queue_delay: Duration::from_millis(1),
        input_side: SIDE,
        backend_threads: 1,
        ..LiveOptions::default()
    }
}

fn payload(seed: u64) -> Vec<u8> {
    synthetic_jpeg(&vserve_device::ImageSpec::new(64, 48, 0), seed)
}

/// Eight concurrent clients over the wire must see exactly the outputs
/// the in-process server computes for the same payloads: the wire
/// carries bytes, it does not perturb them.
#[test]
fn concurrent_clients_bit_identical_to_in_process() {
    // Reference run: same model seed, same options, no socket.
    let payloads: Vec<Vec<u8>> = (0..8).map(payload).collect();
    let reference: Vec<Vec<f32>> = {
        let live = LiveServer::start(model(), opts());
        payloads
            .iter()
            .map(|p| live.infer(p.clone()).expect("in-process infer").output)
            .collect()
    };

    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let payloads = &payloads;
                s.spawn(move || {
                    let client = NetClient::connect(
                        addr,
                        ClientOptions {
                            pool: 1,
                            ..ClientOptions::default()
                        },
                    )
                    .expect("connect");
                    // Every client sends every payload: 64 requests race
                    // through the batcher in arbitrary interleavings.
                    payloads
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            let r = client.infer(p).expect("rpc infer");
                            assert!(
                                r.server_total >= r.inference,
                                "client {c} request {i}: inconsistent stage accounting"
                            );
                            r.output
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (c, outputs) in results.iter().enumerate() {
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(
                out, &reference[i],
                "client {c} payload {i}: wire output diverged from in-process"
            );
        }
    }
    let m = server.metrics();
    assert_eq!(m.live.completed, 64);
    assert_eq!(m.bad_frames, 0);
    // The net path recorded its stages for every completed request.
    use vserve_server::stages;
    let summary = m.summary();
    assert_eq!(summary.breakdown.count(stages::NET_TRANSFER), 64);
    assert_eq!(summary.breakdown.count(stages::DESERIALIZE), 64);
}

/// When the live queue is full, the shed must arrive as a typed
/// `Overloaded` response frame on the same healthy connection — not as a
/// dropped connection or a hang.
#[test]
fn queue_full_sheds_as_typed_overloaded_frames() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: LiveOptions {
                queue_cap: 2,
                preproc_workers: 1,
                ..opts()
            },
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client = NetClient::connect(
        server.local_addr(),
        ClientOptions {
            pool: 1,
            ..ClientOptions::default()
        },
    )
    .expect("connect");

    // Pre-encode a burst so submission is not paced by the JPEG encoder,
    // then fire it all before waiting on anything.
    let payloads: Vec<Vec<u8>> = (0..32).map(|i| payload(100 + i)).collect();
    let pending: Vec<_> = payloads
        .iter()
        .map(|p| client.submit(p).expect("submit"))
        .collect();

    let mut ok = 0;
    let mut overloaded = 0;
    for p in pending {
        match p.wait() {
            Ok(r) => {
                assert_eq!(r.output.len(), 10);
                ok += 1;
            }
            Err(NetError::Server { status, .. }) => {
                assert_eq!(status, Status::Overloaded, "unexpected shed status");
                overloaded += 1;
            }
            Err(other) => panic!("burst request failed with transport error: {other}"),
        }
    }
    assert!(ok > 0, "burst must complete some requests");
    assert!(
        overloaded > 0,
        "queue_cap=2 under a 32-deep burst must shed something"
    );
    // The connection survived every shed: it still serves.
    assert_eq!(client.live_conns(), 1);
    assert_eq!(
        client
            .infer(&payload(999))
            .expect("post-burst infer")
            .output
            .len(),
        10
    );
    let m = server.metrics();
    assert_eq!(m.live.rejected, overloaded);
    assert_eq!(m.live.completed, ok as u64 + 1);
}

/// Hostile bytes — truncations, corruptions, hostile lengths — must never
/// take the server down: each bad connection gets a typed `BadFrame` (or
/// just a close), and well-formed clients keep working throughout.
#[test]
fn malformed_frames_never_kill_the_server() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let jpeg = payload(5);
    let mut good = Vec::new();
    vserve_net::wire::encode_request(
        &mut good,
        &vserve_net::RequestFrame {
            id: 9,
            side: 0,
            deadline_us: 0,
            model: "",
            jpeg: &jpeg,
        },
    );

    let mut hostile: Vec<Vec<u8>> = vec![
        vec![],                             // immediate close
        vec![0x00],                         // partial header
        vec![0xff, 0xff, 0xff, 0xff, 0, 0], // 4 GiB length claim
        vec![0x00, 0x00, 0x00, 0x00],       // zero-length frame
        b"GET / HTTP/1.1\r\n\r\n".to_vec(), // wrong protocol entirely
        good[..good.len() / 2].to_vec(),    // truncated valid frame
    ];
    // Single-byte corruptions of a valid frame at every position in the
    // header + early body.
    for i in 0..good.len().min(24) {
        let mut f = good.clone();
        f[i] ^= 0x80;
        hostile.push(f);
    }

    for bytes in &hostile {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server says (a typed BadFrame frame or EOF);
        // all that matters is the server neither hangs nor dies.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // After the whole gauntlet, a well-formed client still gets answers.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    let r = client.infer(&jpeg).expect("post-gauntlet infer");
    assert_eq!(r.output.len(), 10);
    let m = server.metrics();
    assert!(
        m.bad_frames > 0,
        "gauntlet should have tripped bad-frame accounting"
    );
    // Corruptions of opaque bytes (id, deadline, payload) can still be
    // valid frames and legitimately complete; all that is pinned here is
    // that the final well-formed request was among the completions.
    assert!(m.live.completed >= 1);
}

/// The same hostile-bytes discipline applies to the `VRM1` scrape frame:
/// truncations at every length, hostile length prefixes, trailing bytes,
/// and single-byte corruptions must never kill or wedge the server, and
/// both scraping and inference must work after the gauntlet.
#[test]
fn malformed_metrics_frames_never_kill_the_server() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut good = Vec::new();
    vserve_net::wire::encode_metrics_request(
        &mut good,
        &vserve_net::MetricsRequest { id: 7, flags: 0 },
    );

    let mut hostile: Vec<Vec<u8>> = Vec::new();
    // Truncations of a valid scrape frame at every possible cut.
    for cut in 0..good.len() {
        hostile.push(good[..cut].to_vec());
    }
    // A valid frame followed by a stray trailing byte on the stream.
    let mut trailing = good.clone();
    trailing.push(0xAA);
    hostile.push(trailing);
    // Hostile length prefixes ahead of the magic.
    hostile.push(vec![0xff, 0xff, 0xff, 0xff, b'V', b'R', b'M', b'1']);
    hostile.push(vec![0x00, 0x00, 0x00, 0x03, b'V', b'R', b'M']);
    // Single-byte corruptions across the whole frame (length prefix,
    // magic, id, flags).
    for i in 0..good.len() {
        for bit in [0x01u8, 0x80] {
            let mut f = good.clone();
            f[i] ^= bit;
            hostile.push(f);
        }
    }

    for bytes in &hostile {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // The server survived: scraping and inference both still work.
    let text = vserve_net::scrape(addr).expect("post-gauntlet scrape");
    assert!(text.contains("vserve_up 1"));
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    assert_eq!(client.infer(&payload(6)).expect("infer").output.len(), 10);
}

/// Happy-path scrape over the wire: after real traffic, the exposition
/// reflects it — completed counts, per-stage rows including the wire's
/// own transfer stage, and latency quantiles.
#[test]
fn scrape_exposes_served_traffic_over_the_wire() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    for i in 0..5u64 {
        client.infer(&payload(40 + i)).expect("infer");
    }

    let text = client.scrape().expect("scrape");
    assert!(text.contains("vserve_up 1"));
    assert!(text.contains("vserve_requests_completed_total 5"));
    assert!(text.contains("# TYPE vserve_latency_seconds summary"));
    assert!(text.contains("vserve_latency_seconds{quantile=\"0.99\"}"));
    assert!(text.contains("vserve_stage_seconds_total{stage=\"0-net-transfer\"}"));
    assert!(text.contains("vserve_stage_seconds_total{stage=\"4-inference\"}"));
    // Scraping is read-only: it must not disturb request accounting.
    assert_eq!(server.metrics().live.completed, 5);
    // And the free-function scrape on a dedicated connection agrees.
    let again = vserve_net::scrape(addr).expect("scrape via free fn");
    assert!(again.contains("vserve_requests_completed_total 5"));
}
