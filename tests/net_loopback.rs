//! End-to-end loopback tests for the `vserve-net` TCP front-end.
//!
//! The contract under test: putting a real socket between client and
//! server adds measurable transfer/deserialize stages but changes
//! *nothing else* — the classification output must be bit-identical to
//! the in-process `LiveServer`, overload must surface as typed status
//! frames (not dropped connections), and no sequence of hostile bytes may
//! take the server down.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use vserve_dnn::{models, Model};
use vserve_net::{ClientOptions, NetClient, NetError, NetOptions, NetServer, Status};
use vserve_server::live::{LiveOptions, LiveServer};
use vserve_workload::synthetic_jpeg;

const SIDE: usize = 32;
const SEED: u64 = 21;

fn model() -> Model {
    Model::from_graph(models::micro_cnn(SIDE, 10).expect("graph"), SEED)
}

fn opts() -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 4,
        max_queue_delay: Duration::from_millis(1),
        input_side: SIDE,
        backend_threads: 1,
        ..LiveOptions::default()
    }
}

fn payload(seed: u64) -> Vec<u8> {
    synthetic_jpeg(&vserve_device::ImageSpec::new(64, 48, 0), seed)
}

/// Eight concurrent clients over the wire must see exactly the outputs
/// the in-process server computes for the same payloads: the wire
/// carries bytes, it does not perturb them.
#[test]
fn concurrent_clients_bit_identical_to_in_process() {
    // Reference run: same model seed, same options, no socket.
    let payloads: Vec<Vec<u8>> = (0..8).map(payload).collect();
    let reference: Vec<Vec<f32>> = {
        let live = LiveServer::start(model(), opts());
        payloads
            .iter()
            .map(|p| live.infer(p.clone()).expect("in-process infer").output)
            .collect()
    };

    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let payloads = &payloads;
                s.spawn(move || {
                    let client = NetClient::connect(
                        addr,
                        ClientOptions {
                            pool: 1,
                            ..ClientOptions::default()
                        },
                    )
                    .expect("connect");
                    // Every client sends every payload: 64 requests race
                    // through the batcher in arbitrary interleavings.
                    payloads
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            let r = client.infer(p).expect("rpc infer");
                            assert!(
                                r.server_total >= r.inference,
                                "client {c} request {i}: inconsistent stage accounting"
                            );
                            r.output
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (c, outputs) in results.iter().enumerate() {
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(
                out, &reference[i],
                "client {c} payload {i}: wire output diverged from in-process"
            );
        }
    }
    let m = server.metrics();
    assert_eq!(m.live.completed, 64);
    assert_eq!(m.bad_frames, 0);
    // The net path recorded its stages for every completed request.
    use vserve_server::stages;
    let summary = m.summary();
    assert_eq!(summary.breakdown.count(stages::NET_TRANSFER), 64);
    assert_eq!(summary.breakdown.count(stages::DESERIALIZE), 64);
}

/// When the live queue is full, the shed must arrive as a typed
/// `Overloaded` response frame on the same healthy connection — not as a
/// dropped connection or a hang.
#[test]
fn queue_full_sheds_as_typed_overloaded_frames() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: LiveOptions {
                queue_cap: 2,
                preproc_workers: 1,
                ..opts()
            },
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client = NetClient::connect(
        server.local_addr(),
        ClientOptions {
            pool: 1,
            ..ClientOptions::default()
        },
    )
    .expect("connect");

    // Pre-encode a burst so submission is not paced by the JPEG encoder,
    // then fire it all before waiting on anything.
    let payloads: Vec<Vec<u8>> = (0..32).map(|i| payload(100 + i)).collect();
    let pending: Vec<_> = payloads
        .iter()
        .map(|p| client.submit(p).expect("submit"))
        .collect();

    let mut ok = 0;
    let mut overloaded = 0;
    for p in pending {
        match p.wait() {
            Ok(r) => {
                assert_eq!(r.output.len(), 10);
                ok += 1;
            }
            Err(NetError::Server { status, .. }) => {
                assert_eq!(status, Status::Overloaded, "unexpected shed status");
                overloaded += 1;
            }
            Err(other) => panic!("burst request failed with transport error: {other}"),
        }
    }
    assert!(ok > 0, "burst must complete some requests");
    assert!(
        overloaded > 0,
        "queue_cap=2 under a 32-deep burst must shed something"
    );
    // The connection survived every shed: it still serves.
    assert_eq!(client.live_conns(), 1);
    assert_eq!(
        client
            .infer(&payload(999))
            .expect("post-burst infer")
            .output
            .len(),
        10
    );
    let m = server.metrics();
    assert_eq!(m.live.rejected, overloaded);
    assert_eq!(m.live.completed, ok as u64 + 1);
}

/// Hostile bytes — truncations, corruptions, hostile lengths — must never
/// take the server down: each bad connection gets a typed `BadFrame` (or
/// just a close), and well-formed clients keep working throughout.
#[test]
fn malformed_frames_never_kill_the_server() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let jpeg = payload(5);
    let mut good = Vec::new();
    vserve_net::wire::encode_request(
        &mut good,
        &vserve_net::RequestFrame {
            id: 9,
            side: 0,
            deadline_us: 0,
            model: "",
            tenant: "",
            jpeg: &jpeg,
        },
    );

    let mut hostile: Vec<Vec<u8>> = vec![
        vec![],                             // immediate close
        vec![0x00],                         // partial header
        vec![0xff, 0xff, 0xff, 0xff, 0, 0], // 4 GiB length claim
        vec![0x00, 0x00, 0x00, 0x00],       // zero-length frame
        b"GET / HTTP/1.1\r\n\r\n".to_vec(), // wrong protocol entirely
        good[..good.len() / 2].to_vec(),    // truncated valid frame
    ];
    // Single-byte corruptions of a valid frame at every position in the
    // header + early body.
    for i in 0..good.len().min(24) {
        let mut f = good.clone();
        f[i] ^= 0x80;
        hostile.push(f);
    }

    for bytes in &hostile {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server says (a typed BadFrame frame or EOF);
        // all that matters is the server neither hangs nor dies.
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // After the whole gauntlet, a well-formed client still gets answers.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    let r = client.infer(&jpeg).expect("post-gauntlet infer");
    assert_eq!(r.output.len(), 10);
    let m = server.metrics();
    assert!(
        m.bad_frames > 0,
        "gauntlet should have tripped bad-frame accounting"
    );
    // Corruptions of opaque bytes (id, deadline, payload) can still be
    // valid frames and legitimately complete; all that is pinned here is
    // that the final well-formed request was among the completions.
    assert!(m.live.completed >= 1);
}

/// The same hostile-bytes discipline applies to the `VRM1` scrape frame:
/// truncations at every length, hostile length prefixes, trailing bytes,
/// and single-byte corruptions must never kill or wedge the server, and
/// both scraping and inference must work after the gauntlet.
#[test]
fn malformed_metrics_frames_never_kill_the_server() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut good = Vec::new();
    vserve_net::wire::encode_metrics_request(
        &mut good,
        &vserve_net::MetricsRequest { id: 7, flags: 0 },
    );

    let mut hostile: Vec<Vec<u8>> = Vec::new();
    // Truncations of a valid scrape frame at every possible cut.
    for cut in 0..good.len() {
        hostile.push(good[..cut].to_vec());
    }
    // A valid frame followed by a stray trailing byte on the stream.
    let mut trailing = good.clone();
    trailing.push(0xAA);
    hostile.push(trailing);
    // Hostile length prefixes ahead of the magic.
    hostile.push(vec![0xff, 0xff, 0xff, 0xff, b'V', b'R', b'M', b'1']);
    hostile.push(vec![0x00, 0x00, 0x00, 0x03, b'V', b'R', b'M']);
    // Single-byte corruptions across the whole frame (length prefix,
    // magic, id, flags).
    for i in 0..good.len() {
        for bit in [0x01u8, 0x80] {
            let mut f = good.clone();
            f[i] ^= bit;
            hostile.push(f);
        }
    }

    for bytes in &hostile {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // The server survived: scraping and inference both still work.
    let text = vserve_net::scrape(addr).expect("post-gauntlet scrape");
    assert!(text.contains("vserve_up 1"));
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    assert_eq!(client.infer(&payload(6)).expect("infer").output.len(), 10);
}

/// Happy-path scrape over the wire: after real traffic, the exposition
/// reflects it — completed counts, per-stage rows including the wire's
/// own transfer stage, and latency quantiles.
#[test]
fn scrape_exposes_served_traffic_over_the_wire() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    for i in 0..5u64 {
        client.infer(&payload(40 + i)).expect("infer");
    }

    let text = client.scrape().expect("scrape");
    assert!(text.contains("vserve_up 1"));
    assert!(text.contains("vserve_requests_completed_total 5"));
    assert!(text.contains("# TYPE vserve_latency_seconds summary"));
    assert!(text.contains("vserve_latency_seconds{quantile=\"0.99\"}"));
    assert!(text.contains("vserve_stage_seconds_total{stage=\"0-net-transfer\"}"));
    assert!(text.contains("vserve_stage_seconds_total{stage=\"4-inference\"}"));
    // Effective knob values ride along on every scrape; with no tuner
    // they are the bind-time configuration and zero decisions.
    assert!(text.contains("vserve_tune_max_batch 4"), "{text}");
    assert!(text.contains("vserve_tune_preproc_workers 2"), "{text}");
    assert!(text.contains("vserve_tune_linger_us 1000"), "{text}");
    assert!(text.contains("vserve_tune_decisions_total 0"), "{text}");
    // Scraping is read-only: it must not disturb request accounting.
    assert_eq!(server.metrics().live.completed, 5);
    // And the free-function scrape on a dedicated connection agrees.
    let again = vserve_net::scrape(addr).expect("scrape via free fn");
    assert!(again.contains("vserve_requests_completed_total 5"));
}

/// With the controller enabled, sustained traffic makes it reconfigure
/// the live knobs, and the scrape's decision counter proves it acted.
#[test]
fn scrape_shows_controller_decisions_when_tuning_enabled() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            tune: Some(vserve_tune::TuneOptions {
                interval: Duration::from_millis(10),
                hysteresis: 0.0,
                warmup_ticks: 0,
                ..vserve_tune::TuneOptions::default()
            }),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client =
        NetClient::connect(server.local_addr(), ClientOptions::default()).expect("connect");
    // Keep traffic flowing across several control intervals.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut seed = 0;
    loop {
        client.infer(&payload(seed)).expect("infer");
        seed += 1;
        let text = client.scrape().expect("scrape");
        if !text.contains("vserve_tune_decisions_total 0") {
            // Knob gauges still render, now reflecting live values.
            assert!(text.contains("vserve_tune_max_batch"), "{text}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "controller made no decision under traffic: {text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The server still answers after reconfigurations.
    assert_eq!(client.infer(&payload(999)).expect("infer").output.len(), 10);
}

/// True when the servers in this process run the evented front-end
/// (mirrors `NetOptions::evented`'s env default).
fn evented_mode() -> bool {
    match std::env::var(vserve_net::NET_EVENTED_ENV) {
        Ok(v) => matches!(v.trim(), "1" | "true" | "yes" | "on"),
        Err(_) => cfg!(unix),
    }
}

/// Pulls the value of a single-sample gauge out of an exposition.
fn gauge(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("gauge {name} missing from exposition"))
}

/// The `VRM1` exposition carries the event loop's connection gauges:
/// open connections, draining connections, and the per-connection write
/// buffer's high-water mark.
#[test]
fn scrape_exposes_connection_gauges() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let client = NetClient::connect(
        addr,
        ClientOptions {
            pool: 2,
            ..ClientOptions::default()
        },
    )
    .expect("connect");
    client.infer(&payload(1)).expect("infer");

    let text = client.scrape().expect("scrape");
    // The pooled data connections are open while the scrape runs (the
    // scrape's own short-lived conn may or may not still be counted).
    assert!(
        gauge(&text, "vserve_conns_open ") >= 2.0,
        "pool of 2 must show as open conns: {}",
        gauge(&text, "vserve_conns_open ")
    );
    assert_eq!(gauge(&text, "vserve_conns_draining "), 0.0);
    // Present and numeric; loopback replies usually flush straight into
    // the socket buffer, so the high-water mark may legitimately be 0.
    assert!(gauge(&text, "vserve_write_buffer_hwm_bytes ") >= 0.0);

    // After a graceful drain with nothing in flight, every connection
    // closes and nothing is stuck draining. Polled through the in-process
    // metrics view so the poll itself keeps no connection open. The
    // threaded acceptor pre-reserves one slot while blocked in accept(),
    // so its idle floor is 1, not 0.
    let floor = if evented_mode() { 0 } else { 1 };
    server.drain_connections();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        if m.active <= floor && m.draining == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drained conns never left the gauges: {} open, {} draining",
            m.active,
            m.draining
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The exposition (same document a scrape frame gets) agrees.
    let text = server.exposition();
    assert!(gauge(&text, "vserve_conns_open ") <= floor as f64);
    assert_eq!(gauge(&text, "vserve_conns_draining "), 0.0);
}

/// A slow-loris sender dribbling a valid request one byte at a time must
/// neither block the loop (a concurrent fast client keeps being served
/// mid-dribble) nor lose its own request: the dribbled frame completes.
#[test]
fn slow_loris_byte_at_a_time_sender_is_served_without_blocking_others() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let jpeg = payload(11);
    let mut frame = Vec::new();
    vserve_net::wire::encode_request(
        &mut frame,
        &vserve_net::RequestFrame {
            id: 1,
            side: 0,
            deadline_us: 0,
            model: "",
            tenant: "",
            jpeg: &jpeg,
        },
    );

    let slow = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect slow");
        s.set_nodelay(true).ok();
        s.set_read_timeout(Some(Duration::from_secs(30))).ok();
        for (i, b) in frame.iter().enumerate() {
            s.write_all(std::slice::from_ref(b)).expect("dribble byte");
            // Stretch the dribble over real time without taking minutes.
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut body = Vec::new();
        match vserve_net::wire::read_frame_into(&mut s, &mut body) {
            Ok(Some(_)) => {}
            other => panic!("slow sender got no reply: {other:?}"),
        }
        let resp = vserve_net::wire::decode_response(&body).expect("decode");
        assert_eq!(resp.id, 1);
        assert_eq!(resp.status, Status::Ok, "dribbled frame must complete");
    });

    // While the dribble is in progress, a normal client is unaffected.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect fast");
    for i in 0..10 {
        assert_eq!(
            client
                .infer(&payload(50 + i))
                .expect("fast infer")
                .output
                .len(),
            10
        );
    }
    slow.join().expect("slow sender thread");
}

/// A client that pipelines far past the per-connection in-flight cap and
/// then stalls (never reading) must be flow-controlled — not grow server
/// memory, not block other connections — and still receive every reply
/// once it finally reads.
#[test]
fn stalled_reader_is_flow_controlled_not_fatal() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            max_inflight_per_conn: 2,
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    const BURST: u64 = 24;
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    stalled.set_nodelay(true).ok();
    stalled.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut bytes = Vec::new();
    for id in 0..BURST {
        let jpeg = payload(200 + id);
        vserve_net::wire::encode_request(
            &mut bytes,
            &vserve_net::RequestFrame {
                id,
                side: 0,
                deadline_us: 0,
                model: "",
                tenant: "",
                jpeg: &jpeg,
            },
        );
    }
    // Fire the whole burst without reading a single reply.
    stalled.write_all(&bytes).expect("burst write");

    // The stall must not starve anyone else.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect healthy");
    for i in 0..10 {
        assert_eq!(
            client
                .infer(&payload(70 + i))
                .expect("healthy infer")
                .output
                .len(),
            10
        );
    }

    // Now drain the stalled socket: every reply arrives exactly once.
    let mut got = std::collections::HashSet::new();
    let mut body = Vec::new();
    for _ in 0..BURST {
        match vserve_net::wire::read_frame_into(&mut stalled, &mut body) {
            Ok(Some(_)) => {}
            other => panic!("stalled reader missing replies: {other:?}"),
        }
        let resp = vserve_net::wire::decode_response(&body).expect("decode");
        assert_eq!(resp.status, Status::Ok);
        assert!(got.insert(resp.id), "duplicate reply id {}", resp.id);
    }
    assert_eq!(got.len(), BURST as usize);
}

/// Mid-frame disconnects — a client vanishing with half a header or half
/// a body on the wire — must never wedge the loop or take other
/// connections down.
#[test]
fn mid_frame_disconnects_leave_server_healthy() {
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let jpeg = payload(31);
    let mut frame = Vec::new();
    vserve_net::wire::encode_request(
        &mut frame,
        &vserve_net::RequestFrame {
            id: 3,
            side: 0,
            deadline_us: 0,
            model: "",
            tenant: "",
            jpeg: &jpeg,
        },
    );

    // Cut points: inside the header, right after it, and mid-body.
    for cut in [1usize, 3, 4, 7, frame.len() / 2, frame.len() - 1] {
        for shutdown_first in [false, true] {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&frame[..cut]).expect("partial write");
            if shutdown_first {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            drop(s); // vanish mid-frame
        }
    }

    // Everyone else is fine, including a full request/response cycle.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    assert_eq!(
        client
            .infer(&jpeg)
            .expect("post-gauntlet infer")
            .output
            .len(),
        10
    );
    // The abandoned partial frames never became requests.
    assert_eq!(server.metrics().live.completed, 1);
}

/// High-connection smoke: the evented front-end holds hundreds-to-
/// thousands of idle connections (bounded only by the fd soft limit)
/// while still serving. `VSERVE_NET_SMOKE_CONNS` scales it up to the
/// 10k-connection CI run; threaded mode skips (thread-per-conn is the
/// baseline this exists to beat).
#[test]
fn idle_connection_flood_smoke() {
    if !evented_mode() {
        return; // 2×N threads would be the old architecture's problem
    }
    let budget = vserve_net::fd_soft_limit()
        .map(|l| (l.saturating_sub(512) / 2) as usize)
        .unwrap_or(256);
    let want: usize = std::env::var("VSERVE_NET_SMOKE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let n = want.min(budget);
    if n < 64 {
        return; // fd limit too tight to say anything useful
    }

    let server = NetServer::bind(
        model(),
        NetOptions {
            max_conns: n + 16,
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let mut idle = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("connect {i}/{n} failed: {e}"),
        }
    }
    // Wait for the acceptor to register the flood.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.metrics().active < n {
        assert!(
            std::time::Instant::now() < deadline,
            "only {}/{} conns registered",
            server.metrics().active,
            n
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Still serving under the flood — and the gauges see it.
    let client = NetClient::connect(addr, ClientOptions::default()).expect("connect");
    for i in 0..5 {
        assert_eq!(
            client.infer(&payload(90 + i)).expect("infer").output.len(),
            10
        );
    }
    let text = client.scrape().expect("scrape");
    assert!(
        gauge(&text, "vserve_conns_open ") >= n as f64,
        "gauge below flood size: {}",
        gauge(&text, "vserve_conns_open ")
    );

    drop(idle);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.metrics().active > 8 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle conns never closed: {} still open",
            server.metrics().active
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The router tier changes *where* a request is served, never *what* it
/// answers: outputs through N shards are bit-identical to the in-process
/// server, under both placement policies.
#[test]
fn router_tier_bit_identical_to_in_process() {
    use vserve_net::{Router, RouterOptions, ShardPolicy};

    let payloads: Vec<Vec<u8>> = (0..8).map(payload).collect();
    let reference: Vec<Vec<f32>> = {
        let live = LiveServer::start(model(), opts());
        payloads
            .iter()
            .map(|p| live.infer(p.clone()).expect("in-process infer").output)
            .collect()
    };

    for policy in [ShardPolicy::LeastLoaded, ShardPolicy::ConsistentHash] {
        let router = Router::bind(
            model(),
            RouterOptions {
                shards: 3,
                policy,
                net: NetOptions {
                    live: opts(),
                    ..NetOptions::default()
                },
            },
        )
        .expect("bind router");
        let client = router
            .client(ClientOptions::default())
            .expect("router client");
        for (i, p) in payloads.iter().enumerate() {
            let r = client.infer(p).expect("routed infer");
            assert_eq!(
                r.output, reference[i],
                "payload {i} diverged through the {policy:?} router"
            );
        }
        let served: u64 = router.metrics().iter().map(|m| m.live.completed).sum();
        assert_eq!(served, payloads.len() as u64);
    }
}

/// The wire's own spans (`0-net-transfer`, `0-deserialize`) must join the
/// live pipeline's timeline under the same composed request id, so one
/// trace shows a request from first byte to batched inference — through
/// the event loop exactly as through the threaded path.
#[test]
fn wire_spans_join_live_timeline() {
    use vserve_server::stages;
    use vserve_trace::Tracer;

    let tracer = Tracer::with_capacity(1 << 14);
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: LiveOptions {
                trace: tracer.clone(),
                ..opts()
            },
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let client =
        NetClient::connect(server.local_addr(), ClientOptions::default()).expect("connect");
    for i in 0..6 {
        client.infer(&payload(300 + i)).expect("traced infer");
    }
    drop(client);
    drop(server); // join all recording threads before snapshotting

    let snap = tracer.snapshot();
    let traced: Vec<u64> = snap
        .request_ids()
        .into_iter()
        .filter(|&id| {
            snap.spans_for(id)
                .iter()
                .any(|s| s.stage == stages::NET_TRANSFER)
        })
        .collect();
    assert_eq!(
        traced.len(),
        6,
        "every wire request gets a composed trace id"
    );
    for id in traced {
        let spans = snap.spans_for(id);
        for stage in [
            stages::NET_TRANSFER,
            stages::DESERIALIZE,
            stages::PREPROC,
            stages::INFERENCE,
        ] {
            assert!(
                spans.iter().any(|s| s.stage == stage),
                "request {id:#x} missing {stage} from its joined timeline"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// multi-tenant lanes over the wire
// ---------------------------------------------------------------------------

/// Tenant-tagged (`VRQ2`) frames route to the named lane, quota sheds
/// come back as typed `QuotaExceeded` frames on a healthy connection,
/// and an unknown tenant is a typed rejection — in whichever front-end
/// mode (threaded or evented) this process runs.
#[test]
fn tenant_frames_route_and_shed_typed_over_the_wire() {
    use vserve_server::TenantSpec;
    let reference = {
        let live = LiveServer::start(model(), opts());
        live.infer(payload(0)).expect("in-process infer").output
    };
    let server = NetServer::bind(
        model(),
        NetOptions {
            live: LiveOptions {
                tenants: vec![
                    TenantSpec::new("lc", "default").weight(4.0),
                    TenantSpec::new("metered", "default").quota(1e-9, 1),
                ],
                ..opts()
            },
            ..NetOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Tenant routing: the lc lane serves bit-identically to a
    // single-tenant in-process server.
    let lc = NetClient::connect(
        addr,
        ClientOptions {
            pool: 1,
            tenant: "lc".to_owned(),
            ..ClientOptions::default()
        },
    )
    .expect("connect lc");
    assert_eq!(lc.infer(&payload(0)).expect("lc infer").output, reference);

    // Quota: burst 1 with ~zero refill admits exactly one request, then
    // sheds typed QuotaExceeded without dropping the connection.
    let metered = NetClient::connect(
        addr,
        ClientOptions {
            pool: 1,
            tenant: "metered".to_owned(),
            ..ClientOptions::default()
        },
    )
    .expect("connect metered");
    assert_eq!(
        metered
            .infer(&payload(1))
            .expect("first metered")
            .output
            .len(),
        10
    );
    match metered.infer(&payload(2)) {
        Err(NetError::Server { status, .. }) => assert_eq!(status, Status::QuotaExceeded),
        other => panic!("expected typed quota shed, got {other:?}"),
    }
    assert_eq!(metered.live_conns(), 1, "shed must not drop the connection");

    // Unknown tenant: typed rejection, connection stays up.
    let ghost = NetClient::connect(
        addr,
        ClientOptions {
            pool: 1,
            tenant: "nobody".to_owned(),
            ..ClientOptions::default()
        },
    )
    .expect("connect ghost");
    match ghost.infer(&payload(3)) {
        Err(NetError::Server { status, .. }) => assert_eq!(status, Status::UnknownModel),
        other => panic!("expected typed unknown-tenant rejection, got {other:?}"),
    }

    // The scrape exposes per-lane rows for both tenants.
    let text = server.exposition();
    for needle in [
        "vserve_lane_depth{lane=\"lc\"",
        "vserve_lane_completed{lane=\"lc\"",
        "vserve_lane_shed{lane=\"metered\"",
        "vserve_lane_p99_us{lane=\"lc\"",
    ] {
        assert!(text.contains(needle), "scrape missing {needle}\n{text}");
    }
    let m = server.metrics();
    assert_eq!(m.live.lanes.len(), 2);
    assert_eq!(m.live.lanes[0].completed, 1);
    assert_eq!(m.live.lanes[1].completed, 1);
    assert_eq!(m.live.lanes[1].shed, 1);
}

/// A two-model zoo behind one socket: model names route across the zoo
/// and each lane's outputs stay bit-identical to that model's solo
/// in-process run under co-location.
#[test]
fn zoo_models_route_by_name_over_the_wire() {
    use vserve_server::live::ZooModel;
    let small_ref = {
        let live = LiveServer::start(model(), opts());
        live.infer(payload(7)).expect("solo small").output
    };
    let large_model = || Model::from_graph(models::micro_cnn(48, 7).expect("graph"), 5);
    let large_ref = {
        let live = LiveServer::start(
            large_model(),
            LiveOptions {
                input_side: 48,
                ..opts()
            },
        );
        live.infer(payload(7)).expect("solo large").output
    };
    let server = NetServer::bind_zoo(
        vec![
            ZooModel {
                name: "small".to_owned(),
                model: model(),
                input_side: SIDE,
            },
            ZooModel {
                name: "large".to_owned(),
                model: large_model(),
                input_side: 48,
            },
        ],
        NetOptions {
            live: opts(),
            ..NetOptions::default()
        },
    )
    .expect("bind zoo");
    let addr = server.local_addr();
    let client_for = |m: &str| {
        NetClient::connect(
            addr,
            ClientOptions {
                pool: 1,
                model: m.to_owned(),
                ..ClientOptions::default()
            },
        )
        .expect("connect")
    };
    let small = client_for("small");
    let large = client_for("large");
    // Interleave the two models through the shared backend.
    for _ in 0..3 {
        assert_eq!(
            small.infer(&payload(7)).expect("small rpc").output,
            small_ref
        );
        assert_eq!(
            large.infer(&payload(7)).expect("large rpc").output,
            large_ref
        );
    }
    match client_for("resnet999").infer(&payload(7)) {
        Err(NetError::Server { status, .. }) => assert_eq!(status, Status::UnknownModel),
        other => panic!("expected typed unknown-model rejection, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.live.completed, 6);
    assert_eq!(m.live.lanes.len(), 2);
    assert_eq!(m.live.lanes[0].completed, 3);
    assert_eq!(m.live.lanes[1].completed, 3);
}

/// A cascade pipeline behind one socket: `NetOptions::pipeline` registers
/// the executor at bind (the `VSERVE_PIPELINE` hook), `VRQ2` frames
/// naming it — in the model *or* tenant field — dispatch whole cascades,
/// and the joined output is bit-identical to the in-process runner on a
/// twin zoo.
#[test]
fn pipeline_frames_dispatch_cascades_over_the_wire() {
    use vserve_pipeline::{PipelineRunner, PipelineSpec};
    use vserve_server::live::ZooModel;
    use vserve_server::stages;
    const K: u32 = 4;
    let zoo = || {
        vec![
            ZooModel {
                name: "det".to_owned(),
                model: Model::from_graph(models::micro_cnn(SIDE, 10).expect("graph"), 11),
                input_side: SIDE,
            },
            ZooModel {
                name: "id".to_owned(),
                model: Model::from_graph(models::micro_cnn(SIDE, 10).expect("graph"), 22),
                input_side: SIDE,
            },
        ]
    };
    let reference = {
        let live = LiveServer::start_zoo(zoo(), opts()).expect("twin zoo");
        let runner = PipelineRunner::new(
            live.pipeline_handle(),
            PipelineSpec::chain("faces", "det", "id", K),
        )
        .expect("twin runner");
        runner
            .infer(payload(70))
            .expect("in-process cascade")
            .output
    };
    // The joined reply concatenates the *terminal* stages' outputs: the
    // K identify children, not the non-terminal detect root.
    assert_eq!(reference.len(), 10 * K as usize, "joined terminal outputs");

    let server = NetServer::bind_zoo(
        zoo(),
        NetOptions {
            live: opts(),
            pipeline: Some(PipelineSpec::chain("faces", "det", "id", K)),
            ..NetOptions::default()
        },
    )
    .expect("bind zoo with pipeline");
    let addr = server.local_addr();
    let by_model = NetClient::connect(
        addr,
        ClientOptions {
            pool: 1,
            model: "faces".to_owned(),
            ..ClientOptions::default()
        },
    )
    .expect("connect by model");
    assert_eq!(
        by_model.infer(&payload(70)).expect("wire cascade").output,
        reference,
        "wire cascade must match the in-process runner bit for bit"
    );
    let by_tenant = NetClient::connect(
        addr,
        ClientOptions {
            pool: 1,
            tenant: "faces".to_owned(),
            ..ClientOptions::default()
        },
    )
    .expect("connect by tenant");
    assert_eq!(
        by_tenant
            .infer(&payload(70))
            .expect("tenant cascade")
            .output,
        reference,
        "tenant-field addressing reaches the same executor"
    );

    let m = server.metrics();
    assert_eq!(
        m.live.completed,
        2 * (1 + K as u64),
        "each cascade completes root + K sub-requests"
    );
    let det_row = m
        .live
        .breakdown
        .total(&stages::cascade_stage("faces", "det"));
    let id_row = m
        .live
        .breakdown
        .total(&stages::cascade_stage("faces", "id"));
    assert!(
        det_row > 0.0 && id_row > 0.0,
        "cascade stage rows must appear in the served breakdown: det {det_row} id {id_row}"
    );
}
