//! Codec ↔ tensor ↔ DNN integration: the preprocessing chain the paper
//! measures, executed for real and checked for functional correctness.

use vserve_codec::{decode, encode, psnr, EncodeOptions, Subsampling};
use vserve_dnn::{models, Model};
use vserve_tensor::{ops, Image};

/// Encode → decode → preprocess → classify: classification is stable
/// under the JPEG round trip at high quality (the model can't tell the
/// difference), which is the correctness contract behind serving
/// compressed uploads at all.
#[test]
fn classification_stable_under_jpeg_round_trip() {
    let side = 32;
    let model = Model::from_graph(models::micro_cnn(side, 10).expect("graph"), 77);

    let original = Image::gradient(128, 96);
    let jpeg = encode(
        &original,
        &EncodeOptions {
            quality: 95,
            subsampling: Subsampling::S444,
            ..EncodeOptions::default()
        },
    );
    let decoded = decode(&jpeg).expect("decode");
    assert!(psnr(&original, &decoded) > 35.0);

    let direct = model
        .forward(&ops::standard_preprocess(&original, side))
        .expect("forward direct");
    let via_jpeg = model
        .forward(&ops::standard_preprocess(&decoded, side))
        .expect("forward via jpeg");

    assert_eq!(direct.argmax(), via_jpeg.argmax(), "top class changed");
    for (a, b) in direct.as_slice().iter().zip(via_jpeg.as_slice()) {
        assert!((a - b).abs() < 0.05, "probability drifted: {a} vs {b}");
    }
}

/// The scaled-decode + fused-kernel fast path is an approximation of the
/// baseline chain, but not one the model can distinguish: top-1 must be
/// unchanged on every representative source size, with bounded
/// probability drift.
#[test]
fn classification_top1_unchanged_on_fast_path() {
    let side = 32;
    let model = Model::from_graph(models::micro_cnn(side, 10).expect("graph"), 77);
    for (w, h) in [(96, 72), (256, 192), (400, 300), (800, 600)] {
        let jpeg = encode(
            &Image::gradient(w, h),
            &EncodeOptions {
                quality: 92,
                subsampling: Subsampling::S420,
                ..EncodeOptions::default()
            },
        );
        let baseline = model
            .forward(&ops::standard_preprocess(
                &decode(&jpeg).expect("decode"),
                side,
            ))
            .expect("forward baseline");
        let fast = model
            .forward(&vserve_codec::preprocess_jpeg(&jpeg, side).expect("fast path"))
            .expect("forward fast");
        assert_eq!(
            baseline.argmax(),
            fast.argmax(),
            "top class changed at {w}x{h}"
        );
        for (a, b) in baseline.as_slice().iter().zip(fast.as_slice()) {
            assert!((a - b).abs() < 0.05, "probability drifted: {a} vs {b}");
        }
    }
}

/// The preprocessing chain accepts every representative size the paper
/// uses and always emits the DNN's fixed input shape.
#[test]
fn preprocess_normalizes_all_paper_sizes() {
    for (w, h) in [(60, 70), (500, 375), (1024, 768)] {
        let img = Image::noise(w, h, 42);
        let t = ops::standard_preprocess(&img, 224);
        assert_eq!(t.shape(), &[1, 3, 224, 224]);
        // Normalized values stay in a plausible standardized range.
        for &v in t.as_slice() {
            assert!((-3.0..=3.0).contains(&v), "value {v} out of range");
        }
    }
}

/// Decoding is robust across encoder settings: every (quality,
/// subsampling) cell round-trips and better settings never look worse.
#[test]
fn codec_quality_grid() {
    let img = Image::gradient(80, 60);
    let mut prev_psnr = 0.0;
    for quality in [30u8, 60, 90] {
        let opts = EncodeOptions {
            quality,
            subsampling: Subsampling::S444,
            ..EncodeOptions::default()
        };
        let back = decode(&encode(&img, &opts)).expect("decode");
        let p = psnr(&img, &back);
        assert!(
            p >= prev_psnr - 0.5,
            "psnr regressed at q{quality}: {p:.1} < {prev_psnr:.1}"
        );
        prev_psnr = p;
    }
    assert!(prev_psnr > 35.0, "q90 psnr {prev_psnr:.1}");
}

/// FLOPs accounting is consistent between the zoo and the dnn graphs it
/// is built from (no drift between the table and the architectures).
#[test]
fn zoo_flops_trace_to_graphs() {
    let zoo = vserve::zoo::build();
    let vit_b = zoo
        .iter()
        .find(|e| e.name == "vit-base-16")
        .expect("vit-base in zoo");
    let graph = models::vit_base(224).expect("graph");
    assert_eq!(vit_b.gflops, graph.flops() as f64 / 1e9);
    let r50 = zoo
        .iter()
        .find(|e| e.name == "resnet-50")
        .expect("resnet-50 in zoo");
    let graph = models::resnet50(224, 1000).expect("graph");
    assert_eq!(r50.gflops, graph.flops() as f64 / 1e9);
}
