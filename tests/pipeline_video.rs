//! Video-stream serving: consecutive frames of a scene-held stream reuse
//! the preprocessing cache, cached results stay bit-identical to cold
//! decodes, and an early-exit first stage shrinks the cascade's identify
//! share as the exit rate rises — in the discrete-event replay and on the
//! live executor.

use std::time::Duration;

use vserve_broker::BrokerKind;
use vserve_device::{ImageSpec, NodeConfig};
use vserve_dnn::{models, Model};
use vserve_pipeline::{
    pipeline_stages, Edge, FanOut, PipeCosts, PipelineExperiment, PipelineRunner,
    PipelineRunnerStats, PipelineSpec, StageSpec, Transform,
};
use vserve_server::live::{LiveOptions, LiveServer, ZooModel};
use vserve_workload::{FacesPerFrame, VideoStream};

const SIDE: usize = 32;
/// Frames per held scene; 60 frames at hold 8 → 8 cold decodes,
/// 52 cache hits (expected hit rate ≈ 0.867 ≥ the 0.8 bar).
const HOLD: usize = 8;
const FRAMES: usize = 60;

fn model(seed: u64) -> Model {
    Model::from_graph(models::micro_cnn(SIDE, 4).expect("valid graph"), seed)
}

fn opts(cache_mb: Option<usize>) -> LiveOptions {
    LiveOptions {
        preproc_workers: 2,
        inference_workers: 1,
        max_batch: 4,
        max_queue_delay: Duration::ZERO,
        input_side: SIDE,
        backend_threads: 1,
        preproc_cache_mb: cache_mb,
        coalesce: false,
        ..LiveOptions::default()
    }
}

fn stream(seed: u64) -> VideoStream {
    VideoStream::new(ImageSpec::new(96, 72, 0), seed, HOLD)
}

/// A 60-frame stream with scenes held for 8 frames yields a preproc
/// cache hit rate of at least 0.8 on the live server: exactly one cold
/// decode per scene, every repeat served from the cached tensor.
#[test]
fn video_stream_reuses_preproc_cache() {
    let stream = stream(9);
    assert!(
        stream.expected_hit_rate(FRAMES) >= 0.8,
        "workload model promises >= 0.8, got {}",
        stream.expected_hit_rate(FRAMES)
    );
    let server = LiveServer::start(model(5), opts(Some(8)));
    for i in 0..FRAMES {
        server.infer(stream.frame(i)).expect("infer frame");
    }
    let c = server.metrics().preproc_cache;
    assert_eq!(
        (c.hits + c.misses) as usize,
        FRAMES,
        "every frame consults the cache exactly once: {c:?}"
    );
    let scenes = FRAMES.div_ceil(HOLD);
    assert_eq!(
        c.misses as usize, scenes,
        "one cold decode per scene: {c:?}"
    );
    let rate = c.hits as f64 / (c.hits + c.misses) as f64;
    assert!(rate >= 0.8, "hit rate {rate:.3} below the 0.8 bar: {c:?}");
}

/// Cache hits are bit-identical to cold decodes: the same stream through
/// a cached server and a cache-disabled server produces exactly equal
/// outputs frame by frame.
#[test]
fn cached_outputs_match_cold_decode_bit_for_bit() {
    let stream = stream(21);
    let cached = LiveServer::start(model(5), opts(Some(8)));
    let cold = LiveServer::start(model(5), opts(Some(0)));
    for i in 0..FRAMES {
        let f = stream.frame(i);
        let a = cached.infer(f.clone()).expect("cached infer").output;
        let b = cold.infer(f).expect("cold infer").output;
        assert_eq!(a, b, "frame {i} diverged between cached and cold decode");
    }
    let c = cached.metrics().preproc_cache;
    assert!(c.hits > 0, "the cached arm must actually hit: {c:?}");
    assert_eq!(cold.metrics().preproc_cache.hits, 0);
}

/// Sim half of the early-exit claim: replaying measured costs with a
/// rising exit rate monotonically shrinks the identify stage's share of
/// end-to-end latency.
#[test]
fn sim_early_exit_shrinks_identify_share() {
    let exp = PipelineExperiment {
        node: NodeConfig::paper_testbed(),
        broker: BrokerKind::Fused,
        faces: FacesPerFrame::fixed(4),
        concurrency: 4,
        warmup_s: 0.2,
        measure_s: 1.0,
        seed: 17,
    };
    let share = |rate: f64| {
        let r = exp.clone().run_with_costs(PipeCosts {
            det_s: 1e-3,
            id_face_s: 5e-4,
            handoff_s: 2e-4,
            exit_rate: rate,
        });
        r.breakdown.mean(pipeline_stages::IDENTIFY) / r.latency.mean
    };
    let shares: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 0.9]
        .iter()
        .map(|&rate| share(rate))
        .collect();
    for w in shares.windows(2) {
        assert!(
            w[1] < w[0],
            "identify share must shrink with exit rate: {shares:?}"
        );
    }
}

/// Live half: a cascade whose first stage always early-exits never
/// spawns identify children — its identify share collapses to zero and
/// its joined reply covers the root alone, while the no-exit cascade
/// keeps a positive identify share and a full fan-out join.
#[test]
fn live_early_exit_shrinks_identify_share() {
    const K: u32 = 4;
    let server = LiveServer::start_zoo(
        vec![
            ZooModel {
                name: "det".to_owned(),
                model: model(5),
                input_side: SIDE,
            },
            ZooModel {
                name: "id".to_owned(),
                model: model(6),
                input_side: SIDE,
            },
        ],
        opts(Some(0)),
    )
    .expect("zoo server");
    let spec = |exit: Option<f32>| {
        PipelineSpec::new(
            "vid",
            vec![
                StageSpec {
                    name: "det".to_owned(),
                    lane: "det".to_owned(),
                    children: vec![Edge {
                        to: 1,
                        transform: Transform::CropGrid,
                        fanout: FanOut::Fixed(K),
                    }],
                    early_exit: exit,
                },
                StageSpec::leaf("id", "id"),
            ],
            8,
        )
        .expect("valid spec")
    };
    let stream = stream(33);
    let id_share = |s: &PipelineRunnerStats| {
        let id = s.breakdown.mean("id");
        id / (s.breakdown.mean("det") + id)
    };

    let full = PipelineRunner::new(server.pipeline_handle(), spec(None)).expect("runner");
    for i in 0..12 {
        let r = full.infer(stream.frame(i)).expect("full cascade");
        assert_eq!(r.batch_size, 1 + K as usize, "root + K children joined");
    }
    let fs = full.stats();
    drop(full);

    let exit = PipelineRunner::new(server.pipeline_handle(), spec(Some(f32::NEG_INFINITY)))
        .expect("runner");
    for i in 0..12 {
        let r = exit.infer(stream.frame(i)).expect("early-exit cascade");
        assert_eq!(r.batch_size, 1, "early exit joins the root alone");
    }
    let es = exit.stats();

    assert_eq!(fs.spawned, fs.retired);
    assert_eq!(es.spawned, es.retired);
    assert_eq!(fs.spawned, 12 * (1 + K as u64));
    assert_eq!(es.spawned, 12, "exited cascades must not spawn children");
    assert!(
        id_share(&es) < id_share(&fs),
        "identify share must shrink when the first stage exits: exit {:.3} vs full {:.3}",
        id_share(&es),
        id_share(&fs)
    );
    assert_eq!(id_share(&es), 0.0);
}
