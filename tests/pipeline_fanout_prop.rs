//! Fan-out admission property suite (DESIGN §16).
//!
//! Random cascade DAGs — 1–8 stages, per-edge fan-out 0–8, random lane
//! assignment, random transforms — run against a *live* zoo server whose
//! ingress queue is severely bounded (depth 1–4). The pinned invariants:
//!
//! * every submitted frame completes or is shed with a *typed*
//!   [`LiveError`] — no deadlock, no lost reply;
//! * the spawned and retired sub-request counts reconcile exactly once
//!   the last reply is delivered (no lost sub-request);
//! * the admission budget returns to the full ingress capacity (no
//!   reservation leak);
//! * a spec whose worst-case sub-request count exceeds the ingress
//!   capacity can never be admitted — it sheds before any work starts.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use vserve_device::ImageSpec;
use vserve_dnn::{models, Model};
use vserve_pipeline::{Edge, FanOut, PipelineRunner, PipelineSpec, StageSpec, Transform};
use vserve_server::live::{LiveError, LiveOptions, LiveServer, ZooModel};
use vserve_server::PipelineDriver;
use vserve_workload::synthetic_jpeg;

const SIDE: usize = 32;

fn zoo_model(name: &str, seed: u64) -> ZooModel {
    ZooModel {
        name: name.to_owned(),
        model: Model::from_graph(models::micro_cnn(SIDE, 4).expect("valid graph"), seed),
        input_side: SIDE,
    }
}

/// A two-lane zoo server with a bounded ingress queue of depth
/// `queue_cap` — the adversarial configuration for fan-out admission.
fn zoo(queue_cap: usize) -> LiveServer {
    LiveServer::start_zoo(
        vec![zoo_model("a", 3), zoo_model("b", 4)],
        LiveOptions {
            preproc_workers: 1,
            inference_workers: 1,
            max_batch: 4,
            max_queue_delay: Duration::ZERO,
            input_side: SIDE,
            queue_cap,
            backend_threads: 1,
            preproc_cache_mb: Some(0),
            coalesce: false,
            ..LiveOptions::default()
        },
    )
    .expect("zoo server")
}

/// Derives a valid random DAG from a word stream: every non-last stage
/// gets one forward edge (sometimes two), fan-outs are biased small so
/// bounded queues see both admissions and sheds, and a slice of stages
/// carry an always-true early exit to exercise the child-skipping path.
fn build_spec(raw: &[u64], n_stages: usize) -> PipelineSpec {
    let word = |i: usize| raw[i % raw.len()];
    let mut w = 0usize;
    let mut next = move || {
        w += 1;
        word(w)
    };
    let mut stages = Vec::with_capacity(n_stages);
    for i in 0..n_stages {
        let lane = if next() & 1 == 0 { "a" } else { "b" };
        let early_exit = if next() % 8 == 0 {
            Some(f32::NEG_INFINITY) // always exits: children skipped
        } else {
            None
        };
        let mut children = Vec::new();
        let n_edges = if i + 1 >= n_stages {
            0 // leaf
        } else if n_stages - i > 2 && next() % 4 == 0 {
            2
        } else {
            1
        };
        for _ in 0..n_edges {
            let to = i + 1 + (next() as usize) % (n_stages - i - 1).max(1);
            let fanout = match next() % 8 {
                0 => FanOut::Fixed(0), // disabled edge
                r @ 1..=4 => FanOut::Fixed(r as u32),
                5 => FanOut::Fixed(8),
                _ => FanOut::FromOutput {
                    cap: 1 + (next() % 8) as u32,
                },
            };
            let transform = match next() % 3 {
                0 => Transform::Identity,
                1 => Transform::CropGrid,
                _ => Transform::Resize {
                    side: 8 + (next() as usize) % 25,
                },
            };
            children.push(Edge {
                to,
                transform,
                fanout,
            });
        }
        stages.push(StageSpec {
            name: format!("s{i}"),
            lane: lane.to_owned(),
            children,
            early_exit,
        });
    }
    PipelineSpec::new("prop", stages, 8).expect("generated spec is valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// The tentpole property: random DAG × bounded ingress × overlapping
    /// submissions always resolves — typed replies for every frame and
    /// exact spawn/retire reconciliation afterwards.
    #[test]
    fn random_dags_complete_or_shed_typed(
        n_stages in 1usize..=8,
        queue_cap in 1usize..=4,
        frames in 1usize..=3,
        raw in prop::collection::vec(any::<u64>(), 24usize..=24),
    ) {
        let spec = build_spec(&raw, n_stages);
        let worst = spec.worst_case_requests();
        let server = zoo(queue_cap);
        let runner = Arc::new(
            PipelineRunner::new(server.pipeline_handle(), spec).expect("lanes resolve"),
        );
        server.register_pipeline("prop", runner.clone());
        let jpeg = synthetic_jpeg(&ImageSpec::new(48, 36, 0), raw[0]);
        // Overlapping submissions through the driver interface: cascades
        // in flight simultaneously compete for the shared budget.
        let rxs: Vec<_> = (0..frames)
            .map(|_| PipelineDriver::submit(&*runner, jpeg.clone(), None, None, None))
            .collect();
        let (mut completed, mut shed, mut failed) = (0u64, 0u64, 0u64);
        for rx in rxs {
            // recv() erroring would mean a reply slot was dropped without
            // an answer — a lost frame.
            match rx.recv().expect("no lost reply") {
                Ok(r) => {
                    prop_assert!(r.batch_size >= 1, "joined reply covers >= 1 sub-request");
                    completed += 1;
                }
                Err(LiveError::Overloaded) => shed += 1,
                Err(_) => failed += 1,
            }
        }
        let s = runner.stats();
        prop_assert_eq!(s.spawned, s.retired, "lost sub-request: {:?}", s);
        prop_assert_eq!(s.budget, queue_cap, "reservation leak: {:?}", s);
        prop_assert_eq!(s.completed + s.failed + s.shed, frames as u64);
        prop_assert_eq!(s.completed, completed);
        prop_assert_eq!(s.shed, shed);
        prop_assert_eq!(s.failed, failed);
        if worst > queue_cap {
            // Over-capacity specs must shed at admission, before any
            // sub-request is spawned.
            prop_assert_eq!(s.completed + s.failed, 0, "inadmissible spec ran anyway");
            prop_assert_eq!(s.spawned, 0);
        }
    }
}

/// Expired deadlines flow through the same typed-shed machinery as live
/// sub-requests: the cascade fails typed, and the spawn/retire counts
/// still reconcile (children of an expired parent are submitted with a
/// zero budget, not silently dropped).
#[test]
fn zero_deadline_cascades_fail_typed_and_reconcile() {
    let server = zoo(64);
    let runner = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("c", "a", "b", 4),
    )
    .expect("runner");
    let jpeg = synthetic_jpeg(&ImageSpec::new(48, 36, 0), 7);
    for i in 0..4 {
        let rx = PipelineDriver::submit(&runner, jpeg.clone(), Some(Duration::ZERO), None, None);
        let res = rx.recv().expect("reply delivered");
        assert!(res.is_err(), "zero-deadline cascade {i} must fail typed");
    }
    let s = runner.stats();
    assert_eq!(s.spawned, s.retired, "expired cascade lost a sub-request");
    assert_eq!(s.budget, 64, "expired cascade leaked its reservation");
    assert_eq!(s.failed, 4);
}

/// A runner registered on the server answers `Disconnected` (not a hang)
/// for submissions after its executor shuts down.
#[test]
fn shutdown_runner_answers_disconnected() {
    let server = zoo(16);
    let runner = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("c", "a", "b", 2),
    )
    .expect("runner");
    let jpeg = synthetic_jpeg(&ImageSpec::new(48, 36, 0), 9);
    runner.infer(jpeg.clone()).expect("live cascade");
    drop(runner);
    // A fresh runner on the same server still works: shutdown is
    // per-runner, not per-server.
    let second = PipelineRunner::new(
        server.pipeline_handle(),
        PipelineSpec::chain("c2", "a", "b", 2),
    )
    .expect("second runner");
    second.infer(jpeg).expect("second cascade");
    let s = second.stats();
    assert_eq!(s.completed, 1);
    assert_eq!(s.spawned, s.retired);
}
