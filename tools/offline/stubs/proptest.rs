//! Offline stand-in for the `proptest` crate.
//!
//! Samples `cases` random inputs per test (no shrinking) from the strategy
//! surface the workspace actually uses: numeric ranges, `any::<T>()` for
//! ints / finite f32 / `[u8; N]`, `prop::collection::vec` with exact or
//! ranged sizes, `Just`, `.prop_map`, `prop_oneof!`, and string strategies
//! restricted to single-char-class regexes like `"[a-z0-9_-]{0,32}"`.
//! `prop_assert!`/`prop_assert_eq!` map to plain asserts.

/// Deterministic splitmix64 stream used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the offline runs snappy but
        // large enough to exercise lane tails and size edge cases.
        ProptestConfig { cases: 64 }
    }
}

pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strat: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
sint_strategy!(i8, i16, i32, i64);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let unit = rng.next_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// String strategies from single-char-class regexes: `"[a-z0-9_-]{0,32}"`.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

fn parse_class_regex(pat: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pat.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "offline proptest stub only supports [class]{{lo,hi}} string strategies, got {pat:?}"
    );
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .expect("unterminated char class");
    let mut chars = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && bytes[i + 1] == '-' {
            let (lo, hi) = (bytes[i], bytes[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(bytes[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pat:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    if rest.is_empty() {
        return (chars, 1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
    let (lo, hi) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    (chars, lo, hi)
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.sample(rng))
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Any bit pattern, demoted to finite (real proptest's default f32
        // strategy also excludes NaN and infinities).
        let mut bits = rng.next_u64() as u32;
        if bits & 0x7f80_0000 == 0x7f80_0000 {
            bits &= !0x0080_0000;
        }
        f32::from_bits(bits)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut bits = rng.next_u64();
        if bits & 0x7ff0_0000_0000_0000 == 0x7ff0_0000_0000_0000 {
            bits &= !0x0010_0000_0000_0000;
        }
        f64::from_bits(bits)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub struct OneOf<V> {
    pub arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        (self.arms[idx])(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: Vec<Box<dyn Fn(&mut $crate::TestRng) -> _>> = vec![
            $({
                let s = $arm;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ];
        $crate::OneOf { arms }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat_param in $s:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            #[allow(unused_mut, unused_variables)]
            for __case in 0u32..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    (line!() as u64) << 32 ^ (column!() as u64) << 24 ^ __case as u64,
                );
                $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}
