//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` here is an `Arc<Vec<u8>>`: cheap clones, immutable contents —
//! the only properties the broker crates rely on.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.0[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.0.len() > 32 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}
