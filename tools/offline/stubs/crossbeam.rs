//! Offline stand-in for the `crossbeam` crate (channel module only).
//!
//! Implements the MPMC bounded channel surface `vserve-server` uses:
//! `bounded`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`,
//! `try_send` with `TrySendError::{Full, Disconnected}` and
//! `recv_timeout` with `RecvTimeoutError::{Timeout, Disconnected}`.
//! Built on `Mutex<VecDeque>` + two condvars; semantics (not performance)
//! match crossbeam.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // crossbeam's bounded(0) is a rendezvous channel; the workspace
        // never uses it, so treat it as capacity 1 to keep things simple.
        let cap = cap.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX / 2)
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .0
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .not_empty
                    .wait_timeout(st, left)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
