//! Offline stand-in for the `parking_lot` crate.
//!
//! Only the surface the workspace uses: `Mutex` (non-poisoning `lock()`),
//! `Condvar` with `wait_until`, and `WaitTimeoutResult::timed_out`. Backed
//! by `std::sync`; poisoning is swallowed so the API matches parking_lot.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok().map(|g| MutexGuard(Some(g)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let dur = deadline.saturating_duration_since(Instant::now());
        let (inner, res) = self
            .0
            .wait_timeout(inner, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
