//! Offline stand-in for the `rand` crate (0.8 API surface used here).
//!
//! `StdRng` is a splitmix64/xorshift-based generator, NOT the real StdRng
//! stream — seeded sequences differ from a crates.io build, but every use
//! in the workspace only relies on uniformity and determinism per seed.

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Marker + sampler for `Rng::gen::<T>()` (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Argument for `Rng::gen_range` (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator (NOT the real rand StdRng stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 the seed so nearby seeds diverge.
            let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}
