#!/usr/bin/env bash
# Offline verification harness: builds the whole workspace with bare rustc
# (no cargo, no network) against the dependency stubs in tools/offline/stubs,
# then builds + runs every unit-test suite, integration test, and example.
#
# Usage:
#   tools/offline/verify.sh            # build everything, run all tests
#   tools/offline/verify.sh build      # build only (libs + test bins + bins)
#   tools/offline/verify.sh quick 'filter'  # run only suites matching filter
#
# The cargo registry is unreachable in this container, so this script is the
# tier-1 gate: a clean run here is the "tests green" bar for a PR.
set -euo pipefail
cd "$(dirname "$0")/../.."

OUT=${OUT:-target/offline}
RUSTC=${RUSTC:-rustc}
MODE=${1:-all}
FILTER=${2:-}
mkdir -p "$OUT"

FLAGS=(--edition 2021 -O -C debuginfo=0 -L "$OUT")

say() { printf '\033[1m== %s\033[0m\n' "$*"; }

stub() {
  local name=$1
  say "stub $name"
  $RUSTC "${FLAGS[@]}" -A warnings --crate-type rlib --crate-name "$name" \
    "tools/offline/stubs/$name.rs" --out-dir "$OUT"
}

externs() {
  local e=()
  for d in "$@"; do e+=(--extern "${d}=$OUT/lib${d}.rlib"); done
  printf '%s\n' "${e[@]:-}"
}

lib() {
  # lib <src> <crate_name> [deps...]
  local src=$1 name=$2; shift 2
  say "lib $name"
  local ext=()
  for d in "$@"; do ext+=(--extern "${d}=$OUT/lib${d}.rlib"); done
  $RUSTC "${FLAGS[@]}" --crate-type rlib --crate-name "$name" "$src" \
    "${ext[@]}" --out-dir "$OUT"
}

testbin() {
  # testbin <src> <suite_name> [deps...]  (suite built from crate root: unit tests)
  local src=$1 name=$2; shift 2
  local ext=()
  for d in "$@"; do ext+=(--extern "${d}=$OUT/lib${d}.rlib"); done
  say "test-build $name"
  $RUSTC "${FLAGS[@]}" --test --crate-name "${name}" "$src" \
    "${ext[@]}" -o "$OUT/t_${name}"
}

binbuild() {
  # binbuild <src> <bin_name> [deps...]
  local src=$1 name=$2; shift 2
  local ext=()
  for d in "$@"; do ext+=(--extern "${d}=$OUT/lib${d}.rlib"); done
  say "bin $name"
  $RUSTC "${FLAGS[@]}" --crate-type bin --crate-name "${name}" "$src" \
    "${ext[@]}" -o "$OUT/bin_${name}"
}

# ---------------------------------------------------------------- stubs
stub rand
stub proptest
stub crossbeam
stub parking_lot
stub bytes

# ------------------------------------------------- workspace libs (dep order)
lib crates/compute/src/lib.rs  vserve_compute
lib crates/simd/src/lib.rs     vserve_simd
lib crates/trace/src/lib.rs    vserve_trace
lib crates/device/src/lib.rs   vserve_device
lib crates/metrics/src/lib.rs  vserve_metrics
lib crates/tensor/src/lib.rs   vserve_tensor   vserve_compute vserve_simd
lib crates/sim/src/lib.rs      vserve_sim      vserve_metrics rand
lib crates/codec/src/lib.rs    vserve_codec    vserve_compute vserve_simd vserve_tensor
lib crates/dnn/src/lib.rs      vserve_dnn      vserve_compute vserve_simd vserve_tensor rand
lib crates/broker/src/lib.rs   vserve_broker   bytes parking_lot
lib crates/workload/src/lib.rs vserve_workload vserve_codec vserve_device vserve_sim vserve_tensor
lib crates/sched/src/lib.rs    vserve_sched
lib crates/server/src/lib.rs   vserve_server   vserve_sched vserve_codec vserve_compute vserve_device vserve_dnn vserve_metrics vserve_sim vserve_tensor vserve_trace vserve_workload crossbeam
lib crates/tune/src/lib.rs     vserve_tune     vserve_server vserve_sched vserve_workload
lib crates/pipeline/src/lib.rs vserve_pipeline vserve_broker vserve_device vserve_metrics vserve_sim vserve_workload vserve_server vserve_codec vserve_tensor crossbeam
lib crates/net/src/lib.rs      vserve_net      vserve_server vserve_sched vserve_dnn vserve_metrics vserve_trace vserve_device vserve_workload vserve_tune vserve_pipeline
lib crates/core/src/lib.rs     vserve          vserve_broker vserve_codec vserve_device vserve_dnn vserve_metrics vserve_pipeline vserve_server vserve_sim vserve_tensor vserve_workload
lib crates/bench/src/lib.rs    vserve_bench    vserve vserve_broker vserve_codec vserve_compute vserve_device vserve_dnn vserve_net vserve_pipeline vserve_server vserve_sim vserve_tensor vserve_trace vserve_workload
lib src/lib.rs                 vserve_suite    vserve vserve_compute vserve_codec vserve_dnn vserve_tensor vserve_broker vserve_pipeline vserve_server vserve_net vserve_trace vserve_device vserve_workload vserve_sim vserve_metrics rand

# ------------------------------------------------------------- unit tests
# Each crate's lib rebuilt with --test; dev-deps (proptest/rand) added.
testbin crates/compute/src/lib.rs  ut_compute  proptest
testbin crates/simd/src/lib.rs     ut_simd     proptest
testbin crates/trace/src/lib.rs    ut_trace    proptest
testbin crates/device/src/lib.rs   ut_device   proptest
testbin crates/metrics/src/lib.rs  ut_metrics  proptest rand
testbin crates/tensor/src/lib.rs   ut_tensor   vserve_compute vserve_simd proptest
testbin crates/sim/src/lib.rs      ut_sim      vserve_metrics rand proptest
testbin crates/codec/src/lib.rs    ut_codec    vserve_compute vserve_simd vserve_tensor proptest
testbin crates/dnn/src/lib.rs      ut_dnn      vserve_compute vserve_simd vserve_tensor rand proptest
testbin crates/broker/src/lib.rs   ut_broker   bytes parking_lot proptest
testbin crates/workload/src/lib.rs ut_workload vserve_codec vserve_device vserve_sim vserve_tensor proptest
testbin crates/sched/src/lib.rs    ut_sched    proptest
testbin crates/server/src/lib.rs   ut_server   vserve_sched vserve_codec vserve_compute vserve_device vserve_dnn vserve_metrics vserve_sim vserve_tensor vserve_trace vserve_workload crossbeam proptest
testbin crates/tune/src/lib.rs     ut_tune     vserve_server vserve_sched vserve_workload vserve_device vserve_dnn proptest
testbin crates/net/src/lib.rs      ut_net      vserve_server vserve_sched vserve_dnn vserve_metrics vserve_trace vserve_device vserve_workload vserve_tune vserve_pipeline proptest
testbin crates/pipeline/src/lib.rs ut_pipeline vserve_broker vserve_device vserve_metrics vserve_sim vserve_workload vserve_server vserve_codec vserve_tensor crossbeam proptest
testbin crates/core/src/lib.rs     ut_core     vserve_broker vserve_codec vserve_device vserve_dnn vserve_metrics vserve_pipeline vserve_server vserve_sim vserve_tensor vserve_workload proptest
testbin crates/bench/src/lib.rs    ut_bench    vserve vserve_broker vserve_codec vserve_compute vserve_device vserve_dnn vserve_net vserve_pipeline vserve_server vserve_sim vserve_tensor vserve_trace vserve_workload proptest
testbin src/lib.rs                 ut_suite    vserve vserve_compute vserve_codec vserve_dnn vserve_tensor vserve_broker vserve_pipeline vserve_server vserve_net vserve_trace vserve_device vserve_workload vserve_sim vserve_metrics rand proptest

# ------------------------------------------------------- integration tests
SUITE_DEPS=(vserve vserve_compute vserve_codec vserve_dnn vserve_tensor vserve_broker vserve_pipeline vserve_server vserve_sched vserve_net vserve_tune vserve_trace vserve_device vserve_workload vserve_sim vserve_metrics rand proptest vserve_suite)
testbin crates/sim/tests/queueing_theory.rs it_queueing_theory vserve_sim vserve_metrics rand proptest
for t in tests/*.rs; do
  name=$(basename "$t" .rs)
  testbin "$t" "it_${name}" "${SUITE_DEPS[@]}"
done

# ---------------------------------------------------------------- examples
for ex in examples/*.rs; do
  name=$(basename "$ex" .rs)
  binbuild "$ex" "ex_${name}" "${SUITE_DEPS[@]}"
done

# -------------------------------------------------------------- bench bins
BENCH_DEPS=(vserve_bench vserve vserve_broker vserve_codec vserve_compute vserve_device vserve_dnn vserve_net vserve_pipeline vserve_server vserve_sched vserve_sim vserve_simd vserve_tensor vserve_trace vserve_tune vserve_workload)
for b in crates/bench/src/bin/*.rs; do
  name=$(basename "$b" .rs)
  binbuild "$b" "bench_${name}" "${BENCH_DEPS[@]}"
done

[ "$MODE" = build ] && { say "build-only: done"; exit 0; }

# ------------------------------------------------------------------- run
fail=0
total=0
for t in "$OUT"/t_ut_* "$OUT"/t_it_*; do
  name=$(basename "$t")
  if [ -n "$FILTER" ] && [[ "$name" != *"$FILTER"* ]]; then continue; fi
  say "run $name"
  if ! out=$("$t" --test-threads=1 2>&1); then
    echo "$out" | tail -40
    echo "FAILED: $name"
    fail=1
  else
    line=$(echo "$out" | grep -E '^test result' | tail -1)
    n=$(echo "$line" | sed -E 's/.* ([0-9]+) passed.*/\1/')
    total=$((total + n))
    echo "  $line"
  fi
done

if [ "$MODE" = all ] && [ -z "$FILTER" ]; then
  for ex in "$OUT"/bin_ex_*; do
    say "run $(basename "$ex")"
    "$ex" >/dev/null 2>&1 || { echo "FAILED: example $(basename "$ex")"; fail=1; }
  done
fi

say "total unit+integration tests passed: $total"
[ "$fail" = 0 ] && say "ALL GREEN" || { say "FAILURES PRESENT"; exit 1; }
