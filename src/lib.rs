//! vserve-suite: workspace-level examples and integration tests live here.
